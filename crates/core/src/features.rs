//! Syntactic feature extraction — the "query-by-feature" data model.
//!
//! Figure 1 of the paper defines the feature relations
//! `Queries(qid, qText)`, `DataSources(qid, relName)`,
//! `Attributes(qid, attrName, relName)` and
//! `Predicates(qid, attrName, relName, op, const)`. This module extracts
//! those features from a parsed statement (resolving aliases and, when a
//! catalog is available, unqualified column names) and materialises them into
//! real `relstore` tables that the Meta-query Executor runs SQL against.

use relstore::{Catalog, Engine, Value};
use sqlparse::ast::*;
use sqlparse::printer::expr_to_sql;
use sqlparse::visit::{self, Visitor};
use std::collections::HashMap;

/// One extracted comparison predicate (`relName.attrName op const`).
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateFeature {
    /// Resolved relation name (lower-cased; empty when unresolvable).
    pub table: String,
    /// Attribute name (lower-cased).
    pub column: String,
    /// `<`, `<=`, `=`, `<>`, `>`, `>=`.
    pub op: String,
    /// Rendered constant (`18`, `'Lake Washington'`).
    pub constant: String,
}

/// The syntactic (and structural) features of one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SyntacticFeatures {
    /// Referenced relations, lower-cased, deduplicated, sorted.
    pub tables: Vec<String>,
    /// Referenced attributes as (relName, attrName), resolved through
    /// aliases/schema; deduplicated, sorted.
    pub attributes: Vec<(String, String)>,
    /// Comparison predicates against constants.
    pub predicates: Vec<PredicateFeature>,
    /// Rendered projection items.
    pub projections: Vec<String>,
    /// Rendered GROUP BY items.
    pub group_by: Vec<String>,
    /// Rendered ORDER BY items.
    pub order_by: Vec<String>,
    /// Number of join pairs (tables − 1 per query block, summed).
    pub num_joins: usize,
    /// Does any block nest a subquery?
    pub has_subquery: bool,
    /// Does the projection aggregate?
    pub has_aggregate: bool,
    /// LIMIT value, when present.
    pub limit: Option<u64>,
}

impl SyntacticFeatures {
    /// Mining item vocabulary: `table:<rel>`, `attr:<rel>.<col>`,
    /// `pred:<rel>.<col><op>` (constants stripped — §4.3).
    pub fn items(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for t in &self.tables {
            out.push(format!("table:{t}"));
        }
        for (t, a) in &self.attributes {
            if t.is_empty() {
                out.push(format!("attr:{a}"));
            } else {
                out.push(format!("attr:{t}.{a}"));
            }
        }
        for p in &self.predicates {
            if p.table.is_empty() {
                out.push(format!("pred:{}{}", p.column, p.op));
            } else {
                out.push(format!("pred:{}.{}{}", p.table, p.column, p.op));
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

struct Extractor<'c> {
    catalog: Option<&'c Catalog>,
    /// binding (lower) → table (lower), per depth level (0 = outer).
    alias_stack: Vec<HashMap<String, String>>,
    features: SyntacticFeatures,
}

impl<'c> Extractor<'c> {
    /// Resolve a column's table through the alias maps, falling back to the
    /// catalog schema lookup for unqualified names.
    fn resolve(&self, col: &ColumnRef) -> (String, String) {
        let name = col.name.to_ascii_lowercase();
        if let Some(q) = &col.qualifier {
            let q = q.to_ascii_lowercase();
            for level in self.alias_stack.iter().rev() {
                if let Some(t) = level.get(&q) {
                    return (t.clone(), name);
                }
            }
            // Qualifier that is not an alias: assume it names the table.
            return (q, name);
        }
        // Unqualified: find a unique in-scope table carrying this column.
        if let Some(catalog) = self.catalog {
            for level in self.alias_stack.iter().rev() {
                let mut hits: Vec<&String> = Vec::new();
                for t in level.values() {
                    if let Ok(table) = catalog.table(t) {
                        if table.schema.column_index(&name).is_some() {
                            hits.push(t);
                        }
                    }
                }
                hits.sort();
                hits.dedup();
                if hits.len() == 1 {
                    return (hits[0].clone(), name);
                }
                if !hits.is_empty() {
                    break; // ambiguous — give up on resolution
                }
            }
        }
        // Single-table scope resolves trivially even without a catalog.
        for level in self.alias_stack.iter().rev() {
            let mut tables: Vec<&String> = level.values().collect();
            tables.sort();
            tables.dedup();
            if tables.len() == 1 {
                return (tables[0].clone(), name);
            }
        }
        (String::new(), name)
    }
}

impl<'c> Visitor for Extractor<'c> {
    fn visit_table(&mut self, name: &str, _alias: Option<&str>, _depth: usize) {
        self.features.tables.push(name.to_ascii_lowercase());
    }

    fn visit_column(&mut self, col: &ColumnRef, _depth: usize) {
        let (t, a) = self.resolve(col);
        self.features.attributes.push((t, a));
    }

    fn visit_comparison(&mut self, col: &ColumnRef, op: BinaryOp, lit: &Literal, _depth: usize) {
        let (t, a) = self.resolve(col);
        self.features.predicates.push(PredicateFeature {
            table: t,
            column: a,
            op: op.as_str().to_string(),
            constant: render_literal(lit),
        });
    }

    fn enter_subquery(&mut self, _depth: usize) {
        self.features.has_subquery = true;
    }
}

fn render_literal(l: &Literal) -> String {
    match l {
        Literal::Int(i) => i.to_string(),
        Literal::Float(f) => format!("{f}"),
        Literal::Str(s) => format!("'{s}'"),
        Literal::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Literal::Null => "NULL".to_string(),
        Literal::Placeholder => "?".to_string(),
    }
}

/// Build the alias map for one SELECT level.
fn level_aliases(s: &SelectStatement) -> HashMap<String, String> {
    let mut m = HashMap::new();
    for t in &s.from {
        m.insert(
            t.binding_name().to_ascii_lowercase(),
            t.name.to_ascii_lowercase(),
        );
        m.insert(t.name.to_ascii_lowercase(), t.name.to_ascii_lowercase());
        for j in &t.joins {
            m.insert(
                j.binding_name().to_ascii_lowercase(),
                j.table.to_ascii_lowercase(),
            );
            m.insert(j.table.to_ascii_lowercase(), j.table.to_ascii_lowercase());
        }
    }
    m
}

/// Extract features from a statement. A catalog improves resolution of
/// unqualified columns in multi-table queries.
pub fn extract(stmt: &Statement, catalog: Option<&Catalog>) -> SyntacticFeatures {
    let mut ex = Extractor {
        catalog,
        alias_stack: Vec::new(),
        features: SyntacticFeatures::default(),
    };
    // Pre-push alias maps for nested selects as we walk. The generic walker
    // has no enter/leave select hooks, so walk manually at the top level.
    if let Statement::Select(s) = stmt {
        walk_select_features(&mut ex, s);
        ex.features.projections = s
            .projection
            .iter()
            .map(|item| match item {
                SelectItem::Wildcard => "*".to_string(),
                SelectItem::QualifiedWildcard(q) => format!("{}.*", q.to_ascii_lowercase()),
                SelectItem::Expr { expr, alias } => {
                    let base = expr_to_sql(expr).to_ascii_lowercase();
                    match alias {
                        Some(a) => format!("{base} as {}", a.to_ascii_lowercase()),
                        None => base,
                    }
                }
            })
            .collect();
        ex.features.group_by = s
            .group_by
            .iter()
            .map(|e| expr_to_sql(e).to_ascii_lowercase())
            .collect();
        ex.features.order_by = s
            .order_by
            .iter()
            .map(|o| {
                let mut t = expr_to_sql(&o.expr).to_ascii_lowercase();
                if o.desc {
                    t.push_str(" desc");
                }
                t
            })
            .collect();
        ex.features.limit = s.limit;
        ex.features.has_aggregate = has_aggregate(s);
    } else {
        visit::walk_statement(&mut ex, stmt);
    }

    let f = &mut ex.features;
    let raw_table_count = f.tables.len();
    f.tables.sort();
    f.tables.dedup();
    f.attributes.sort();
    f.attributes.dedup();
    f.num_joins = raw_table_count.saturating_sub(1);
    f.attributes.retain(|(_, a)| !a.is_empty());
    ex.features
}

fn walk_select_features(ex: &mut Extractor<'_>, s: &SelectStatement) {
    ex.alias_stack.push(level_aliases(s));
    for t in &s.from {
        ex.visit_table(&t.name, t.alias.as_deref(), ex.alias_stack.len() - 1);
        for j in &t.joins {
            ex.visit_table(&j.table, j.alias.as_deref(), ex.alias_stack.len() - 1);
            if let Some(on) = &j.on {
                walk_expr_features(ex, on);
            }
        }
    }
    for item in &s.projection {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr_features(ex, expr);
        }
    }
    if let Some(w) = &s.where_clause {
        walk_expr_features(ex, w);
    }
    for g in &s.group_by {
        walk_expr_features(ex, g);
    }
    if let Some(h) = &s.having {
        walk_expr_features(ex, h);
    }
    for o in &s.order_by {
        walk_expr_features(ex, &o.expr);
    }
    ex.alias_stack.pop();
}

fn walk_expr_features(ex: &mut Extractor<'_>, e: &Expr) {
    match e {
        Expr::Column(c) => {
            let depth = ex.alias_stack.len() - 1;
            ex.visit_column(c, depth);
        }
        Expr::Literal(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => walk_expr_features(ex, expr),
        Expr::Binary { left, op, right } => {
            if op.is_comparison() {
                match (&**left, &**right) {
                    (Expr::Column(c), Expr::Literal(l)) => {
                        ex.visit_comparison(c, *op, l, 0);
                    }
                    (Expr::Literal(l), Expr::Column(c)) => {
                        ex.visit_comparison(c, visit::flip_comparison(*op), l, 0);
                    }
                    _ => {}
                }
            }
            walk_expr_features(ex, left);
            walk_expr_features(ex, right);
        }
        Expr::Function { args, .. } => {
            for a in args {
                walk_expr_features(ex, a);
            }
        }
        Expr::InList { expr, list, .. } => {
            walk_expr_features(ex, expr);
            for i in list {
                walk_expr_features(ex, i);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            walk_expr_features(ex, expr);
            ex.enter_subquery(0);
            walk_select_features(ex, subquery);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            // BETWEEN surfaces as two range predicates.
            if let (Expr::Column(c), Expr::Literal(lo)) = (&**expr, &**low) {
                ex.visit_comparison(c, BinaryOp::GtEq, lo, 0);
            }
            if let (Expr::Column(c), Expr::Literal(hi)) = (&**expr, &**high) {
                ex.visit_comparison(c, BinaryOp::LtEq, hi, 0);
            }
            walk_expr_features(ex, expr);
            walk_expr_features(ex, low);
            walk_expr_features(ex, high);
        }
        Expr::Like { expr, pattern, .. } => {
            if let (Expr::Column(c), Expr::Literal(p)) = (&**expr, &**pattern) {
                let (t, a) = ex.resolve(c);
                ex.features.predicates.push(PredicateFeature {
                    table: t,
                    column: a,
                    op: "LIKE".to_string(),
                    constant: render_literal(p),
                });
            }
            walk_expr_features(ex, expr);
            walk_expr_features(ex, pattern);
        }
        Expr::Exists { subquery, .. } => {
            ex.enter_subquery(0);
            walk_select_features(ex, subquery);
        }
        Expr::ScalarSubquery(sub) => {
            ex.enter_subquery(0);
            walk_select_features(ex, sub);
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(op) = operand {
                walk_expr_features(ex, op);
            }
            for (w, t) in branches {
                walk_expr_features(ex, w);
                walk_expr_features(ex, t);
            }
            if let Some(el) = else_branch {
                walk_expr_features(ex, el);
            }
        }
    }
}

fn has_aggregate(s: &SelectStatement) -> bool {
    fn in_expr(e: &Expr) -> bool {
        match e {
            Expr::Function {
                name, star, args, ..
            } => relstore::expr_is_aggregate(name, *star) || args.iter().any(in_expr),
            Expr::Binary { left, right, .. } => in_expr(left) || in_expr(right),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => in_expr(expr),
            _ => false,
        }
    }
    s.projection.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => in_expr(expr),
        _ => false,
    }) || s.having.is_some()
        || !s.group_by.is_empty()
}

// ---------------------------------------------------------------------
// Feature relations (Figure 1)
// ---------------------------------------------------------------------

/// DDL for the Figure 1 feature relations plus the runtime-metadata relation.
pub const FEATURE_DDL: [&str; 5] = [
    "CREATE TABLE Queries (qid INT, qText TEXT)",
    "CREATE TABLE DataSources (qid INT, relName TEXT)",
    "CREATE TABLE Attributes (qid INT, attrName TEXT, relName TEXT)",
    "CREATE TABLE Predicates (qid INT, attrName TEXT, relName TEXT, op TEXT, const TEXT)",
    "CREATE TABLE QueryMeta (qid INT, author INT, ts INT, sessionId INT, elapsedUs INT, cardinality INT, success BOOLEAN)",
];

/// Create the feature relations (and their indexes) on a fresh engine.
pub fn create_feature_relations(engine: &mut Engine) {
    for ddl in FEATURE_DDL {
        engine.execute(ddl).expect("feature relation DDL");
    }
    for (t, c) in [
        ("Queries", "qid"),
        ("DataSources", "qid"),
        ("DataSources", "relName"),
        ("Attributes", "qid"),
        ("Attributes", "attrName"),
        ("Attributes", "relName"),
        ("Predicates", "qid"),
        ("Predicates", "attrName"),
        ("QueryMeta", "qid"),
    ] {
        engine.create_index(t, c).expect("feature index");
    }
}

/// Context rows for [`insert_features`].
pub struct FeatureRowMeta {
    /// Query id the rows describe.
    pub qid: u64,
    /// Issuing user id.
    pub author: u32,
    /// Trace-time seconds.
    pub ts: u64,
    /// Session id.
    pub session: u64,
    /// Execution time in microseconds.
    pub elapsed_us: u64,
    /// Result row count.
    pub cardinality: u64,
    /// Whether execution succeeded.
    pub success: bool,
}

/// Insert one query's features into the feature relations.
pub fn insert_features(
    engine: &mut Engine,
    meta: &FeatureRowMeta,
    text: &str,
    f: &SyntacticFeatures,
) {
    let qid = Value::Int(meta.qid as i64);
    engine
        .catalog
        .table_mut("Queries")
        .unwrap()
        .insert(vec![qid.clone(), Value::from(text)])
        .unwrap();
    for t in &f.tables {
        engine
            .catalog
            .table_mut("DataSources")
            .unwrap()
            .insert(vec![qid.clone(), Value::from(t.as_str())])
            .unwrap();
    }
    for (t, a) in &f.attributes {
        engine
            .catalog
            .table_mut("Attributes")
            .unwrap()
            .insert(vec![
                qid.clone(),
                Value::from(a.as_str()),
                Value::from(t.as_str()),
            ])
            .unwrap();
    }
    for p in &f.predicates {
        engine
            .catalog
            .table_mut("Predicates")
            .unwrap()
            .insert(vec![
                qid.clone(),
                Value::from(p.column.as_str()),
                Value::from(p.table.as_str()),
                Value::from(p.op.as_str()),
                Value::from(p.constant.as_str()),
            ])
            .unwrap();
    }
    engine
        .catalog
        .table_mut("QueryMeta")
        .unwrap()
        .insert(vec![
            qid,
            Value::Int(meta.author as i64),
            Value::Int(meta.ts as i64),
            Value::Int(meta.session as i64),
            Value::Int(meta.elapsed_us as i64),
            Value::Int(meta.cardinality as i64),
            Value::Bool(meta.success),
        ])
        .unwrap();
    // Keep index freshness lazy: relstore invalidates on DML automatically
    // only through Engine::execute; direct table inserts require an explicit
    // invalidation.
    for t in [
        "Queries",
        "DataSources",
        "Attributes",
        "Predicates",
        "QueryMeta",
    ] {
        engine.invalidate_indexes(t);
    }
}

/// Remove a query's rows from all feature relations (owner deletion, §2.4).
pub fn delete_features(engine: &mut Engine, qid: u64) {
    for t in [
        "Queries",
        "DataSources",
        "Attributes",
        "Predicates",
        "QueryMeta",
    ] {
        engine
            .execute(&format!("DELETE FROM {t} WHERE qid = {qid}"))
            .expect("feature delete");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(sql: &str) -> SyntacticFeatures {
        extract(&sqlparse::parse(sql).unwrap(), None)
    }

    #[test]
    fn extracts_figure1_features() {
        // The motivating query behind Figure 1: correlate salinity and temp.
        let f = features(
            "SELECT * FROM WaterSalinity S, WaterTemp T \
             WHERE S.salinity > 0.2 AND T.temp < 18 AND S.loc_x = T.loc_x",
        );
        assert_eq!(f.tables, vec!["watersalinity", "watertemp"]);
        assert!(f
            .attributes
            .contains(&("watersalinity".into(), "salinity".into())));
        assert!(f.attributes.contains(&("watertemp".into(), "temp".into())));
        let pred_keys: Vec<String> = f
            .predicates
            .iter()
            .map(|p| format!("{}.{}{}{}", p.table, p.column, p.op, p.constant))
            .collect();
        assert!(pred_keys.contains(&"watersalinity.salinity>0.2".to_string()));
        assert!(pred_keys.contains(&"watertemp.temp<18".to_string()));
        assert_eq!(f.num_joins, 1);
        assert!(!f.has_subquery);
    }

    #[test]
    fn resolves_unqualified_single_table() {
        let f = features("SELECT temp FROM WaterTemp WHERE temp < 18");
        assert_eq!(f.attributes, vec![("watertemp".into(), "temp".into())]);
        assert_eq!(f.predicates[0].table, "watertemp");
    }

    #[test]
    fn between_becomes_two_predicates() {
        let f = features("SELECT * FROM t WHERE x BETWEEN 1 AND 5");
        assert_eq!(f.predicates.len(), 2);
        assert_eq!(f.predicates[0].op, ">=");
        assert_eq!(f.predicates[1].op, "<=");
    }

    #[test]
    fn like_predicate_extracted() {
        let f = features("SELECT * FROM t WHERE name LIKE '%lake%'");
        assert_eq!(f.predicates[0].op, "LIKE");
        assert_eq!(f.predicates[0].constant, "'%lake%'");
    }

    #[test]
    fn subquery_features_included() {
        let f = features(
            "SELECT city FROM CityLocations WHERE city IN \
             (SELECT city FROM Cities WHERE state = 'WA')",
        );
        assert!(f.has_subquery);
        assert!(f.tables.contains(&"cities".to_string()));
        assert!(f
            .predicates
            .iter()
            .any(|p| p.table == "cities" && p.column == "state"));
    }

    #[test]
    fn aggregates_and_clauses() {
        let f = features(
            "SELECT lake, COUNT(*) FROM WaterTemp GROUP BY lake \
             HAVING COUNT(*) > 3 ORDER BY lake DESC LIMIT 10",
        );
        assert!(f.has_aggregate);
        assert_eq!(f.group_by, vec!["lake"]);
        assert_eq!(f.order_by, vec!["lake desc"]);
        assert_eq!(f.limit, Some(10));
    }

    #[test]
    fn items_vocabulary() {
        let f = features("SELECT * FROM WaterTemp T WHERE T.temp < 18");
        let items = f.items();
        assert!(items.contains(&"table:watertemp".to_string()));
        assert!(items.contains(&"attr:watertemp.temp".to_string()));
        assert!(items.contains(&"pred:watertemp.temp<".to_string()));
    }

    #[test]
    fn feature_relations_roundtrip() {
        let mut e = Engine::new();
        create_feature_relations(&mut e);
        let f = features("SELECT * FROM WaterSalinity WHERE salinity > 0.2");
        insert_features(
            &mut e,
            &FeatureRowMeta {
                qid: 1,
                author: 42,
                ts: 100,
                session: 7,
                elapsed_us: 1234,
                cardinality: 10,
                success: true,
            },
            "SELECT * FROM WaterSalinity WHERE salinity > 0.2",
            &f,
        );
        let r = e
            .execute("SELECT qid FROM DataSources WHERE relName = 'watersalinity'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let r = e
            .execute("SELECT const FROM Predicates WHERE attrName = 'salinity'")
            .unwrap();
        assert_eq!(r.rows[0][0].render(), "0.2");
        delete_features(&mut e, 1);
        let r = e.execute("SELECT * FROM Queries").unwrap();
        assert!(r.rows.is_empty());
    }
}
