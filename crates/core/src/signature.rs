//! Precomputed similarity signatures (§4.2/§4.3 hot-path support).
//!
//! Every pairwise-similarity consumer in the system — kNN meta-queries,
//! the recommendation panel, the miner's clustering distance matrix,
//! query-by-data — ultimately compares the same per-query artifacts: the
//! syntactic feature sets, the constant-stripped parse tree, and the output
//! rows. Recomputing those artifacts per *pair* (as the seed implementation
//! did: six `HashSet<String>` allocations of `format!`-ed keys plus a
//! `strip_constants` + `statement_tree` rebuild per distance call) made
//! every hot path O(n · feature-materialisation) per probe.
//!
//! A [`SimSignature`] is computed **once per record at ingest** and holds:
//!
//! * the three feature sets (tables, `table.column` attributes, predicate
//!   templates) as sorted `u32` vectors interned through a
//!   [`FeatureInterner`] owned by the Query Storage — pairwise Jaccard
//!   becomes an allocation-free sorted merge;
//! * the cached constant-stripped canonical parse tree (shared via
//!   `Arc`), so Zhang–Shasha tree edit distance never rebuilds trees;
//! * the output rows hashed to a sorted `u64` set (output Jaccard) and the
//!   lower-cased output *cells* hashed likewise (a sound negative screen
//!   for query-by-data containment checks).
//!
//! The same interned ids key the storage's inverted feature-posting index,
//! which kNN uses for candidate generation: any record sharing **no**
//! feature with the probe has a per-namespace Jaccard of exactly 1.0
//! (or 0.0 when both sides are empty), which yields an O(1) lower bound
//! that prunes non-candidates without giving up the exact top-k.

use crate::features::SyntacticFeatures;
use crate::model::{OutputSummary, QueryRecord};
use cqms_cow::{CowMap, SnapshotVec};
use sqlparse::{SelectProfile, TreeNode, TreeShape};
use std::sync::Arc;

/// FNV-1a 64-bit hash (stable across runs; used for output row/cell
/// sets). One implementation serves the whole workspace — the tree-label
/// and diff-profile hashes use it too.
pub use sqlparse::fingerprint::fnv1a;

/// Interns feature keys to dense `u32` ids. Owned by the Query Storage;
/// ids are assigned in first-seen order and are **process-local** — they
/// are never persisted, and a storage rebuilt from a snapshot may assign
/// different ids to the same keys (e.g. when a maintenance repair
/// re-interned features out of insertion order before the snapshot).
/// Every id-consuming structure (signatures, postings) is rebuilt
/// alongside the interner, so cross-process id stability is never needed.
///
/// Keys are namespaced (`t:` tables, `a:` attributes, `p:` predicate
/// templates) so ids never collide across feature kinds and one posting
/// index can cover all three.
///
/// Internally copy-on-write ([`cqms_cow`] containers) so cloning the
/// storage into a read snapshot shares the whole vocabulary by pointer
/// instead of copying O(vocab) strings per publish.
#[derive(Debug, Clone, Default)]
pub struct FeatureInterner {
    map: CowMap<String, u32>,
    names: SnapshotVec<String>,
}

impl PartialEq for FeatureInterner {
    fn eq(&self, other: &Self) -> bool {
        // `map` is derivable from `names` (id = position), so comparing
        // the name sequences compares the whole interner.
        self.names == other.names
    }
}

impl FeatureInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `key`, assigning a fresh id on first sight.
    pub fn intern(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.map.get_by(key) {
            return id;
        }
        let id = self.names.len() as u32;
        self.map.insert(key.to_string(), id);
        self.names.push(key.to_string());
        id
    }

    /// Look up a key without interning (probe signatures: a feature never
    /// seen by the store cannot match any stored record anyway).
    pub fn lookup(&self, key: &str) -> Option<u32> {
        self.map.get_by(key).copied()
    }

    /// The key behind an id.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct interned features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the interner empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Delta entries in the key map since its last seal — the marginal
    /// copy cost a snapshot clone pays for the interner.
    pub fn head_len(&self) -> usize {
        self.map.head_len()
    }

    /// Fold the key map's delta head into a fresh sealed generation so
    /// subsequent clones are pure `Arc` bumps.
    pub fn seal(&mut self) {
        self.map.seal();
    }
}

/// The precomputed similarity signature of one logged query.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSignature {
    /// Interned table ids, sorted, deduplicated.
    pub tables: Vec<u32>,
    /// Interned `table.column` attribute ids, sorted, deduplicated.
    pub attributes: Vec<u32>,
    /// Interned predicate-template (`table.column op`) ids, sorted,
    /// deduplicated (constants excluded per §4.3).
    pub predicates: Vec<u32>,
    /// Cached constant-stripped parse tree (None when the SQL failed to
    /// parse — such records are maximally far under tree metrics).
    pub tree: Option<Arc<TreeNode>>,
    /// Size + node-label histogram of `tree` (present iff `tree` is):
    /// feeds the Zhang–Shasha lower bound that rejects a pair before the
    /// O(tree²) DP runs, and the metric index's size-gap pruning.
    /// `Arc`-shared with every index entry that carries it, so sealing
    /// or dropping a generation never clones or frees histograms.
    pub tree_shape: Option<Arc<TreeShape>>,
    /// Folded SELECT-clause profile (present iff the statement is a
    /// SELECT): feeds the ParseTree diff lower bound. Behind a pointer
    /// to keep the signature itself slim — paths that scan every
    /// signature (output screens, feature merges) never touch the
    /// profile — and `Arc`-shared with the registry's profile groups.
    pub diff_profile: Option<Arc<SelectProfile>>,
    /// The diff-folded statement itself (present iff the statement is a
    /// SELECT): lets exact ParseTree diffs skip the two per-pair clones
    /// ([`sqlparse::diff::edit_distance_normalized_folded`]).
    pub folded_select: Option<Arc<sqlparse::SelectStatement>>,
    /// FNV fingerprint of the printed folded SELECT (present iff
    /// `folded_select` is): the index registry's profile-fingerprint
    /// grouping buckets by it (and verifies structural equality, so a
    /// collision can never merge two templates).
    pub profile_fp: Option<u64>,
    /// 64-bit bloom over the interned feature ids (all three namespaces,
    /// bit `id & 63`): non-overlapping blooms *prove* the feature sets
    /// disjoint, so the miner's distance matrix and session clustering can
    /// take the O(1) disjoint path without merging.
    pub feature_bloom: u64,
    /// Hashed output rows, sorted + deduplicated (None when no summary is
    /// stored — output distance is then undefined, as before).
    pub output_rows: Option<Vec<u64>>,
    /// Hashed lower-cased output cells, sorted + deduplicated. A sound
    /// *negative* screen for [`OutputSummary::contains_value`]: a missing
    /// hash proves the value is absent; a present hash is verified against
    /// the stored rows (hash collisions can never flip an answer).
    pub output_cells: Option<Vec<u64>>,
}

impl SimSignature {
    /// Build the signature for a record at ingest, interning new features.
    pub fn build(record: &QueryRecord, interner: &mut FeatureInterner) -> SimSignature {
        Self::assemble(record, &mut |key| interner.intern(key))
    }

    /// Build a probe signature against a read-only interner. Features the
    /// store has never seen get unique sentinel ids from `u32::MAX`
    /// downward — they match nothing, which is exactly their semantics.
    pub fn probe(record: &QueryRecord, interner: &FeatureInterner) -> SimSignature {
        let mut next_sentinel = u32::MAX;
        Self::assemble(record, &mut |key| {
            interner.lookup(key).unwrap_or_else(|| {
                let id = next_sentinel;
                next_sentinel -= 1;
                id
            })
        })
    }

    fn assemble(record: &QueryRecord, map: &mut dyn FnMut(&str) -> u32) -> SimSignature {
        let f: &SyntacticFeatures = &record.features;
        let mut ids = |keys: Vec<String>| -> Vec<u32> {
            let mut keys = keys;
            keys.sort();
            keys.dedup();
            let mut v: Vec<u32> = keys.iter().map(|k| map(k)).collect();
            v.sort_unstable();
            v
        };
        let tables = ids(f.tables.iter().map(|t| format!("t:{t}")).collect());
        let attributes = ids(f
            .attributes
            .iter()
            .map(|(t, c)| format!("a:{t}.{c}"))
            .collect());
        let predicates = ids(f
            .predicates
            .iter()
            .map(|p| format!("p:{}.{}{}", p.table, p.column, p.op))
            .collect());

        let tree = record
            .statement
            .as_ref()
            .map(|s| Arc::new(sqlparse::statement_tree(&sqlparse::strip_constants(s))));
        let tree_shape = tree.as_deref().map(|t| Arc::new(TreeShape::of(t)));
        let (diff_profile, folded_select, profile_fp) = match &record.statement {
            Some(sqlparse::Statement::Select(s)) => {
                let folded = sqlparse::diff::fold_for_diff(s);
                let fp = fnv1a(sqlparse::printer::select_to_sql(&folded).as_bytes());
                (
                    Some(Arc::new(SelectProfile::of_folded(&folded))),
                    Some(Arc::new(folded)),
                    Some(fp),
                )
            }
            _ => (None, None, None),
        };

        let (output_rows, output_cells) = match &record.summary {
            OutputSummary::None => (None, None),
            OutputSummary::Full { rows, .. } | OutputSummary::Sample { rows, .. } => {
                // Same join key the record-based output distance uses, so
                // the hashed set has identical cardinalities.
                let mut row_hashes: Vec<u64> = rows
                    .iter()
                    .map(|r| fnv1a(r.join("\u{1}").as_bytes()))
                    .collect();
                row_hashes.sort_unstable();
                row_hashes.dedup();
                let mut cell_hashes: Vec<u64> = rows
                    .iter()
                    .flat_map(|r| r.iter())
                    .map(|c| fnv1a(c.to_ascii_lowercase().as_bytes()))
                    .collect();
                cell_hashes.sort_unstable();
                cell_hashes.dedup();
                (Some(row_hashes), Some(cell_hashes))
            }
        };

        let feature_bloom = bloom64(
            tables
                .iter()
                .chain(attributes.iter())
                .chain(predicates.iter())
                .copied(),
        );

        SimSignature {
            tables,
            attributes,
            predicates,
            tree,
            tree_shape,
            diff_profile,
            folded_select,
            profile_fp,
            feature_bloom,
            output_rows,
            output_cells,
        }
    }

    /// All interned feature ids (posting-index keys), in no particular
    /// order but without duplicates (namespaced keys cannot collide).
    pub fn feature_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.tables
            .iter()
            .chain(self.attributes.iter())
            .chain(self.predicates.iter())
            .copied()
    }

    /// Could the output contain a cell equal to `value`
    /// (case-insensitively)? `false` is definitive; `true` must be
    /// verified against the stored rows.
    pub fn may_contain_cell(&self, value: &str) -> bool {
        match &self.output_cells {
            None => false,
            Some(cells) => cells
                .binary_search(&fnv1a(value.to_ascii_lowercase().as_bytes()))
                .is_ok(),
        }
    }

    /// Does this signature's hashed output state still describe
    /// `summary`? Summaries are immutable after insert *except* through
    /// `QueryStorage::refresh_summary`/`reindex`, which rebuild the
    /// signature — a mismatch here means someone mutated the summary in
    /// place and the output-cell screens would silently go stale. Debug
    /// assertions on the query-by-data path enforce the invariant.
    pub fn summary_coherent(&self, summary: &OutputSummary) -> bool {
        match (summary, &self.output_rows) {
            (OutputSummary::None, None) => self.output_cells.is_none(),
            (
                OutputSummary::Full { rows, .. } | OutputSummary::Sample { rows, .. },
                Some(hashes),
            ) => {
                let mut fresh: Vec<u64> = rows
                    .iter()
                    .map(|r| fnv1a(r.join("\u{1}").as_bytes()))
                    .collect();
                fresh.sort_unstable();
                fresh.dedup();
                fresh == *hashes
            }
            _ => false,
        }
    }
}

/// 64-bit bloom over a set of ids (bit `id & 63` each): non-overlapping
/// blooms *prove* the id sets disjoint. The single definition of the
/// bit-assignment scheme — signatures, session clustering and the miner's
/// matrix screen all rely on it agreeing.
pub fn bloom64(ids: impl Iterator<Item = u32>) -> u64 {
    ids.fold(0u64, |acc, id| acc | (1u64 << (id & 63)))
}

/// Size of the intersection of two sorted, deduplicated id slices.
pub fn intersect_count<T: Ord + Copy>(a: &[T], b: &[T]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard distance over sorted id sets — float-for-float the same
/// computation as the seed's `HashSet` version (empty ∪ empty ⇒ 0).
pub fn jaccard_ids<T: Ord + Copy>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = intersect_count(a, b) as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    1.0 - inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;
    use crate::model::*;
    use crate::storage::make_record;

    fn rec(id: u64, sql: &str) -> QueryRecord {
        let stmt = sqlparse::parse(sql).ok();
        let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
        make_record(
            QueryId(id),
            UserId(0),
            0,
            sql,
            stmt,
            feats,
            RuntimeFeatures::default(),
            OutputSummary::None,
            SessionId(0),
            Visibility::Public,
        )
    }

    #[test]
    fn interner_assigns_dense_stable_ids() {
        let mut i = FeatureInterner::new();
        let a = i.intern("t:watertemp");
        let b = i.intern("t:lakes");
        assert_eq!(i.intern("t:watertemp"), a);
        assert_ne!(a, b);
        assert_eq!(i.lookup("t:lakes"), Some(b));
        assert_eq!(i.lookup("t:nope"), None);
        assert_eq!(i.resolve(a), Some("t:watertemp"));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn signature_sets_sorted_and_deduped() {
        let mut i = FeatureInterner::new();
        let s = SimSignature::build(
            &rec(0, "SELECT * FROM WaterTemp WHERE temp < 18 AND temp < 22"),
            &mut i,
        );
        assert_eq!(s.tables.len(), 1);
        // The two predicates share the template `watertemp.temp<`.
        assert_eq!(s.predicates.len(), 1);
        assert!(s.tables.windows(2).all(|w| w[0] < w[1]));
        assert!(s.tree.is_some());
    }

    #[test]
    fn probe_sentinels_never_match() {
        let mut i = FeatureInterner::new();
        let stored = SimSignature::build(&rec(0, "SELECT * FROM WaterTemp"), &mut i);
        let probe = SimSignature::probe(&rec(1, "SELECT * FROM Unseen"), &i);
        assert_eq!(intersect_count(&stored.tables, &probe.tables), 0);
        // The same table as stored does resolve to the interned id.
        let probe2 = SimSignature::probe(&rec(2, "SELECT * FROM WaterTemp"), &i);
        assert_eq!(intersect_count(&stored.tables, &probe2.tables), 1);
    }

    #[test]
    fn unparseable_sql_has_no_tree() {
        let mut i = FeatureInterner::new();
        let s = SimSignature::build(&rec(0, "SELEC nope"), &mut i);
        assert!(s.tree.is_none());
        assert!(s.tables.is_empty());
    }

    #[test]
    fn output_hashes_screen_cells() {
        let mut i = FeatureInterner::new();
        let mut r = rec(0, "SELECT lake FROM WaterTemp");
        r.summary = OutputSummary::Full {
            columns: vec!["lake".into()],
            rows: vec![vec!["Lake Washington".into()], vec!["Green Lake".into()]],
        };
        let s = SimSignature::build(&r, &mut i);
        assert!(s.may_contain_cell("lake washington"));
        assert!(s.may_contain_cell("GREEN LAKE"));
        assert!(!s.may_contain_cell("Lake Union"));
        assert_eq!(s.output_rows.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn jaccard_matches_hashset_semantics() {
        assert_eq!(jaccard_ids::<u32>(&[], &[]), 0.0);
        assert_eq!(jaccard_ids(&[1u32, 2], &[3, 4]), 1.0);
        assert_eq!(jaccard_ids(&[1u32, 2], &[1, 2]), 0.0);
        let d = jaccard_ids(&[1u32, 2, 3], &[2, 3, 4]);
        assert!((d - 0.5).abs() < 1e-12);
    }
}
