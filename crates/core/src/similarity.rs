//! Query similarity and ranking.
//!
//! §4.2 asks "what it means for two queries or the output of two queries to
//! be similar" and §2.3 asks "how to construct ranking functions that combine
//! similarity measures together and with other desired properties (high
//! popularity, efficient runtime, small result cardinality)". This module
//! implements the three distances the paper names — feature-based, parse-tree
//! based and output based — plus the combined ranking policy.

use crate::config::CqmsConfig;
use crate::model::{OutputSummary, QueryRecord};
use crate::signature::{self, SimSignature};
use std::collections::HashSet;

/// Which distance the kNN meta-query uses (§2.3 "Query similarity could be
/// defined in terms of query parse trees, features, or output data").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceKind {
    /// Weighted Jaccard over the three syntactic feature namespaces.
    Features,
    /// Cheap diff-based parse-tree distance (edit-op count, normalised).
    ParseTree,
    /// Exact Zhang–Shasha ordered tree edit distance over the canonical,
    /// constant-stripped parse trees (§4.3's "parse tree similarity …
    /// after removing the constants from the tree"). More faithful, ~4-6x
    /// slower than [`DistanceKind::ParseTree`] (ablation A3).
    TreeEdit,
    /// Jaccard over hashed output rows/cells.
    Output,
    /// Weighted blend of whatever signals are available.
    Combined,
}

/// Jaccard distance between two string sets (1 − |∩|/|∪|; empty∪empty = 0).
fn jaccard_distance<T: std::hash::Hash + Eq>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    1.0 - inter / union
}

/// Feature distance: weighted Jaccard over tables, attributes and predicate
/// templates (weights from config; constants excluded per §4.3).
pub fn feature_distance(a: &QueryRecord, b: &QueryRecord, config: &CqmsConfig) -> f64 {
    let ta: HashSet<&String> = a.features.tables.iter().collect();
    let tb: HashSet<&String> = b.features.tables.iter().collect();
    let aa: HashSet<String> = a
        .features
        .attributes
        .iter()
        .map(|(t, c)| format!("{t}.{c}"))
        .collect();
    let ab: HashSet<String> = b
        .features
        .attributes
        .iter()
        .map(|(t, c)| format!("{t}.{c}"))
        .collect();
    let pa: HashSet<String> = a
        .features
        .predicates
        .iter()
        .map(|p| format!("{}.{}{}", p.table, p.column, p.op))
        .collect();
    let pb: HashSet<String> = b
        .features
        .predicates
        .iter()
        .map(|p| format!("{}.{}{}", p.table, p.column, p.op))
        .collect();
    config.weight_tables * jaccard_distance(&ta, &tb)
        + config.weight_attributes * jaccard_distance(&aa, &ab)
        + config.weight_predicates * jaccard_distance(&pa, &pb)
}

/// Exact Zhang–Shasha tree edit distance on canonical, constant-stripped
/// parse trees, normalised by the larger tree size.
pub fn tree_edit_distance(a: &QueryRecord, b: &QueryRecord) -> f64 {
    match (&a.statement, &b.statement) {
        (Some(sa), Some(sb)) => {
            let ta = sqlparse::statement_tree(&sqlparse::strip_constants(sa));
            let tb = sqlparse::statement_tree(&sqlparse::strip_constants(sb));
            sqlparse::normalized_tree_distance(&ta, &tb)
        }
        _ => 1.0,
    }
}

/// Parse-tree distance: normalised edit count between the statements
/// (§4.3 "parse tree similarity"). Unparseable statements are maximally far.
pub fn tree_distance(a: &QueryRecord, b: &QueryRecord) -> f64 {
    match (&a.statement, &b.statement) {
        (Some(sqlparse::Statement::Select(sa)), Some(sqlparse::Statement::Select(sb))) => {
            sqlparse::diff::edit_distance_normalized(sa, sb)
        }
        (Some(x), Some(y)) if x == y => 0.0,
        _ => 1.0,
    }
}

/// Output distance: Jaccard over stored output rows — treating queries "as
/// black boxes" (§4.1). `None` when either side has no summary.
pub fn output_distance(a: &QueryRecord, b: &QueryRecord) -> Option<f64> {
    let rows = |s: &OutputSummary| -> Option<HashSet<String>> {
        match s {
            OutputSummary::None => None,
            OutputSummary::Full { rows, .. } | OutputSummary::Sample { rows, .. } => {
                Some(rows.iter().map(|r| r.join("\u{1}")).collect())
            }
        }
    };
    let ra = rows(&a.summary)?;
    let rb = rows(&b.summary)?;
    Some(jaccard_distance(&ra, &rb))
}

// ---------------------------------------------------------------------
// Signature-based kernels (the hot path)
//
// Every function below is value-identical to its record-based sibling
// above but runs allocation-free over precomputed [`SimSignature`]s:
// interned sorted id sets instead of freshly `format!`-ed `HashSet`s,
// cached constant-stripped trees instead of per-pair rebuilds, hashed
// output-row sets instead of re-joined strings. kNN, the recommendation
// panel, the miner's distance matrix and query-by-data all go through
// these.
// ---------------------------------------------------------------------

/// The Combined blend (§2.3): features and parse tree always available,
/// output folded in when both sides store a summary. Single source of
/// truth for the weights — the exact distance ([`distance`],
/// [`distance_with`]) and the kNN lower bound (tree term at 0) both go
/// through here, so the bound can never drift above the distance.
pub fn combined_blend(f: f64, t: f64, o: Option<f64>) -> f64 {
    match o {
        Some(o) => 0.45 * f + 0.35 * t + 0.2 * o,
        None => 0.55 * f + 0.45 * t,
    }
}

/// Feature distance over signatures — same weighted Jaccard as
/// [`feature_distance`], as a sorted merge over interned ids.
pub fn feature_distance_sig(a: &SimSignature, b: &SimSignature, config: &CqmsConfig) -> f64 {
    config.weight_tables * signature::jaccard_ids(&a.tables, &b.tables)
        + config.weight_attributes * signature::jaccard_ids(&a.attributes, &b.attributes)
        + config.weight_predicates * signature::jaccard_ids(&a.predicates, &b.predicates)
}

/// Feature distance between signatures known to share **no** feature
/// (posting-index non-candidates): each per-namespace Jaccard is exactly
/// 0.0 (both empty) or 1.0 (disjoint), so the distance collapses to an
/// O(1) emptiness pattern — bit-identical to [`feature_distance_sig`]
/// on the same pair.
pub fn feature_distance_disjoint(a: &SimSignature, b: &SimSignature, config: &CqmsConfig) -> f64 {
    fn j(x: &[u32], y: &[u32]) -> f64 {
        if x.is_empty() && y.is_empty() {
            0.0
        } else {
            1.0
        }
    }
    config.weight_tables * j(&a.tables, &b.tables)
        + config.weight_attributes * j(&a.attributes, &b.attributes)
        + config.weight_predicates * j(&a.predicates, &b.predicates)
}

/// Zhang–Shasha distance over the cached constant-stripped trees — same
/// value as [`tree_edit_distance`] without rebuilding either tree.
pub fn tree_edit_distance_sig(a: &SimSignature, b: &SimSignature) -> f64 {
    match (&a.tree, &b.tree) {
        (Some(ta), Some(tb)) => sqlparse::normalized_tree_distance(ta, tb),
        _ => 1.0,
    }
}

/// Output distance over hashed row sets — same Jaccard as
/// [`output_distance`] without re-joining or re-hashing any row.
pub fn output_distance_sig(a: &SimSignature, b: &SimSignature) -> Option<f64> {
    let ra = a.output_rows.as_ref()?;
    let rb = b.output_rows.as_ref()?;
    Some(signature::jaccard_ids(ra, rb))
}

/// ParseTree (diff-based) distance over the cached folded statements —
/// same value as [`tree_distance`] without the two per-pair clones the
/// differ's fold pass otherwise makes.
pub fn tree_distance_sig(
    a: &QueryRecord,
    a_sig: &SimSignature,
    b: &QueryRecord,
    b_sig: &SimSignature,
) -> f64 {
    match (&a_sig.folded_select, &b_sig.folded_select) {
        (Some(fa), Some(fb)) => sqlparse::diff::edit_distance_normalized_folded(fa, fb),
        // Folded statements exist iff the statement is a SELECT, so these
        // arms mirror tree_distance's non-SELECT cases exactly.
        _ => match (&a.statement, &b.statement) {
            (Some(x), Some(y)) if x == y => 0.0,
            _ => 1.0,
        },
    }
}

/// Distance under the chosen metric over precomputed signatures. The
/// records are still needed for the non-SELECT fallback arms of
/// [`DistanceKind::ParseTree`] (and the ParseTree component of
/// `Combined`), which compare the statements directly.
pub fn distance_with(
    a: &QueryRecord,
    a_sig: &SimSignature,
    b: &QueryRecord,
    b_sig: &SimSignature,
    kind: DistanceKind,
    config: &CqmsConfig,
) -> f64 {
    match kind {
        DistanceKind::Features => feature_distance_sig(a_sig, b_sig, config),
        DistanceKind::ParseTree => tree_distance_sig(a, a_sig, b, b_sig),
        DistanceKind::TreeEdit => tree_edit_distance_sig(a_sig, b_sig),
        DistanceKind::Output => output_distance_sig(a_sig, b_sig).unwrap_or(1.0),
        DistanceKind::Combined => {
            let f = feature_distance_sig(a_sig, b_sig, config);
            let t = tree_distance_sig(a, a_sig, b, b_sig);
            combined_blend(f, t, output_distance_sig(a_sig, b_sig))
        }
    }
}

/// Distance under the chosen metric, in [0, 1].
///
/// Record-based reference implementation: materialises feature sets and
/// parse trees per call. The serving paths use [`distance_with`] over
/// precomputed signatures instead; this stays as the ground truth the
/// signature kernels are tested (and benchmarked) against.
pub fn distance(a: &QueryRecord, b: &QueryRecord, kind: DistanceKind, config: &CqmsConfig) -> f64 {
    match kind {
        DistanceKind::Features => feature_distance(a, b, config),
        DistanceKind::ParseTree => tree_distance(a, b),
        DistanceKind::TreeEdit => tree_edit_distance(a, b),
        DistanceKind::Output => output_distance(a, b).unwrap_or(1.0),
        DistanceKind::Combined => {
            // Blend: features and tree always available; output when stored.
            let f = feature_distance(a, b, config);
            let t = tree_distance(a, b);
            combined_blend(f, t, output_distance(a, b))
        }
    }
}

/// The combined ranking function of §2.3: similarity blended with
/// popularity, recency and maintained quality. Returns a score in [0, 1]
/// (Fig. 3 displays it as a percentage).
pub fn rank_score(
    candidate: &QueryRecord,
    dist: f64,
    now_ts: u64,
    max_popularity: u32,
    popularity: u32,
    config: &CqmsConfig,
) -> f64 {
    let similarity = 1.0 - dist.clamp(0.0, 1.0);
    let pop = popularity as f64 / max_popularity.max(1) as f64;
    // Recency decays with a one-week half-life (trace seconds).
    let age = now_ts.saturating_sub(candidate.ts) as f64;
    let recency = 0.5f64.powf(age / (7.0 * 86_400.0));
    config.rank_similarity * similarity
        + config.rank_popularity * pop
        + config.rank_recency * recency
        + config.rank_quality * candidate.quality
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;
    use crate::model::*;
    use crate::storage::make_record;

    fn rec(id: u64, sql: &str) -> QueryRecord {
        let stmt = sqlparse::parse(sql).unwrap();
        let feats = extract(&stmt, None);
        make_record(
            QueryId(id),
            UserId(0),
            100,
            sql,
            Some(stmt),
            feats,
            RuntimeFeatures {
                success: true,
                ..Default::default()
            },
            OutputSummary::None,
            SessionId(0),
            Visibility::Public,
        )
    }

    fn with_summary(mut r: QueryRecord, rows: Vec<Vec<&str>>) -> QueryRecord {
        r.summary = OutputSummary::Full {
            columns: vec!["c".into()],
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(String::from).collect())
                .collect(),
        };
        r
    }

    #[test]
    fn identical_queries_distance_zero() {
        let cfg = CqmsConfig::default();
        let a = rec(0, "SELECT * FROM WaterTemp WHERE temp < 18");
        let b = rec(1, "select * from watertemp where TEMP < 18");
        assert!(feature_distance(&a, &b, &cfg) < 1e-9);
        assert!(tree_distance(&a, &b) < 1e-9);
        assert!(distance(&a, &b, DistanceKind::Combined, &cfg) < 1e-9);
    }

    #[test]
    fn constant_change_is_nearer_than_table_change() {
        let cfg = CqmsConfig::default();
        let base = rec(0, "SELECT * FROM WaterTemp WHERE temp < 18");
        let const_change = rec(1, "SELECT * FROM WaterTemp WHERE temp < 22");
        let table_change = rec(2, "SELECT * FROM CityLocations WHERE pop < 18");
        let d1 = distance(&base, &const_change, DistanceKind::Combined, &cfg);
        let d2 = distance(&base, &table_change, DistanceKind::Combined, &cfg);
        assert!(d1 < d2, "{d1} !< {d2}");
        // Constants are excluded from features entirely.
        assert!(feature_distance(&base, &const_change, &cfg) < 1e-9);
    }

    #[test]
    fn overlapping_tables_closer_than_disjoint() {
        let cfg = CqmsConfig::default();
        let a = rec(0, "SELECT * FROM WaterSalinity, WaterTemp");
        let b = rec(1, "SELECT * FROM WaterTemp, CityLocations");
        let c = rec(2, "SELECT * FROM Lakes");
        assert!(feature_distance(&a, &b, &cfg) < feature_distance(&a, &c, &cfg));
    }

    #[test]
    fn output_distance_matches_black_box_view() {
        let a = with_summary(
            rec(0, "SELECT lake FROM WaterTemp WHERE temp < 18"),
            vec![vec!["Lake Washington"], vec!["Green Lake"]],
        );
        // Different text, same output → output distance 0.
        let b = with_summary(
            rec(1, "SELECT lake FROM Lakes WHERE max_depth > 5"),
            vec![vec!["Lake Washington"], vec!["Green Lake"]],
        );
        let c = with_summary(
            rec(2, "SELECT lake FROM WaterTemp"),
            vec![vec!["Lake Union"]],
        );
        assert_eq!(output_distance(&a, &b), Some(0.0));
        assert_eq!(output_distance(&a, &c), Some(1.0));
        assert_eq!(output_distance(&a, &rec(3, "SELECT 1")), None);
    }

    #[test]
    fn rank_score_prefers_popular_and_recent() {
        let cfg = CqmsConfig::default();
        let a = rec(0, "SELECT * FROM WaterTemp");
        let now = a.ts;
        let s_pop = rank_score(&a, 0.2, now, 10, 10, &cfg);
        let s_unpop = rank_score(&a, 0.2, now, 10, 1, &cfg);
        assert!(s_pop > s_unpop);
        let s_old = rank_score(&a, 0.2, now + 30 * 86_400, 10, 10, &cfg);
        assert!(s_pop > s_old);
        assert!((0.0..=1.0).contains(&s_pop));
    }

    #[test]
    fn tree_edit_metric_behaves() {
        let cfg = CqmsConfig::default();
        let a = rec(0, "SELECT * FROM WaterTemp WHERE temp < 18");
        let b = rec(1, "SELECT * FROM WaterTemp WHERE temp < 22");
        // Constants are stripped first, so a constant change is distance 0.
        assert!(distance(&a, &b, DistanceKind::TreeEdit, &cfg) < 1e-9);
        let c = rec(2, "SELECT city FROM CityLocations GROUP BY city");
        let d_far = distance(&a, &c, DistanceKind::TreeEdit, &cfg);
        assert!(d_far > 0.3, "{d_far}");
        // Symmetry.
        assert!((d_far - distance(&c, &a, DistanceKind::TreeEdit, &cfg)).abs() < 1e-12);
    }

    #[test]
    fn signature_kernels_match_record_kernels() {
        let cfg = CqmsConfig::default();
        let recs = [
            rec(0, "SELECT * FROM WaterTemp WHERE temp < 18"),
            with_summary(
                rec(1, "SELECT lake FROM WaterTemp, Lakes WHERE area > 100"),
                vec![vec!["Lake Washington"], vec!["Green Lake"]],
            ),
            with_summary(
                rec(2, "SELECT city FROM CityLocations GROUP BY city"),
                vec![vec!["Lake Washington"]],
            ),
            rec(3, "SELECT salinity FROM WaterSalinity WHERE salinity > 0.2"),
        ];
        let mut interner = crate::signature::FeatureInterner::new();
        let sigs: Vec<SimSignature> = recs
            .iter()
            .map(|r| SimSignature::build(r, &mut interner))
            .collect();
        for i in 0..recs.len() {
            for j in 0..recs.len() {
                for kind in [
                    DistanceKind::Features,
                    DistanceKind::ParseTree,
                    DistanceKind::TreeEdit,
                    DistanceKind::Output,
                    DistanceKind::Combined,
                ] {
                    let legacy = distance(&recs[i], &recs[j], kind, &cfg);
                    let sig = distance_with(&recs[i], &sigs[i], &recs[j], &sigs[j], kind, &cfg);
                    assert_eq!(legacy, sig, "{kind:?} diverges on pair ({i}, {j})");
                }
            }
        }
        // Disjoint fast path agrees with the full merge on disjoint pairs
        // (records 0 and 2 share no tables, attributes or predicates).
        assert_eq!(
            feature_distance_disjoint(&sigs[0], &sigs[2], &cfg),
            feature_distance_sig(&sigs[0], &sigs[2], &cfg),
        );
    }

    #[test]
    fn distance_is_symmetric() {
        let cfg = CqmsConfig::default();
        let a = rec(0, "SELECT * FROM WaterTemp WHERE temp < 18");
        let b = rec(1, "SELECT lake FROM WaterTemp, Lakes WHERE area > 100");
        for kind in [
            DistanceKind::Features,
            DistanceKind::ParseTree,
            DistanceKind::TreeEdit,
            DistanceKind::Combined,
        ] {
            let d1 = distance(&a, &b, kind, &cfg);
            let d2 = distance(&b, &a, kind, &cfg);
            assert!((d1 - d2).abs() < 1e-9, "{kind:?} asymmetric");
            assert!((0.0..=1.0).contains(&d1));
        }
    }
}
