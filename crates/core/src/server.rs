//! The CQMS server façade (Figure 4): client-facing API over the Query
//! Profiler, Query Storage, Meta-query Executor, Query Miner and Query
//! Maintenance, wired to one embedded DBMS.
//!
//! The two *online* components (Profiler, Meta-query Executor) run on the
//! caller's thread. The two *background* components (Miner, Maintenance) run
//! either synchronously via [`Cqms::run_miner_epoch`] /
//! [`Cqms::run_maintenance`] or on a background thread via
//! [`spawn_background_miner`].

use crate::admin::Directory;
use crate::assist::completion::{CompletionEngine, Suggestion};
use crate::assist::correction::{Correction, CorrectionEngine, RepairSuggestion};
use crate::assist::recommend::{recommend_panel, PanelRow};
use crate::config::CqmsConfig;
use crate::error::CqmsError;
use crate::maintenance::{self, MaintenanceReport, RefreshReport};
use crate::metaquery::{MetaQueryExecutor, ScoredHit, TreePattern};
use crate::miner::assoc::{AssocRule, RuleMiner};
use crate::miner::cluster::{self, ClusteringResult};
use crate::miner::editpatterns::EditPatternMiner;
use crate::miner::sessions;
use crate::model::*;
use crate::profiler::{ProfiledQuery, Profiler};
use crate::similarity::DistanceKind;
use crate::storage::QueryStorage;
use crate::viz;
use crate::wal::{self, RecoveryReport};
use parking_lot::RwLock;
use relstore::{Engine, TableStats};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Summary of one Query Miner epoch (§4.3).
#[derive(Debug, Clone, Default)]
pub struct MinerReport {
    /// Association rules in the published rule set.
    pub association_rules: usize,
    /// Clusters produced by the epoch's k-medoids run.
    pub clusters: usize,
    /// Final clustering cost (sum of distances to medoids).
    pub clustering_cost: f64,
    /// Queries whose predicted session changed this epoch.
    pub sessions_refined: usize,
    /// Edit-pattern edges mined this epoch.
    pub edit_edges_mined: usize,
    /// Did this epoch build + publish a scheduled index generation?
    pub index_rebuilt: bool,
    /// The structural-index generation published after this epoch.
    pub index_generation: u64,
    /// Did this epoch write a durable snapshot and truncate the WAL?
    pub snapshot_written: bool,
    /// The WAL flush that closes the epoch failed: state the epoch derived
    /// (refined sessions, rotations) may not be durable yet. `None` means
    /// the flush succeeded (or there is no WAL attached).
    pub wal_flush_error: Option<CqmsError>,
    /// Retries the closing WAL flush needed before succeeding (or giving
    /// up into [`MinerReport::wal_flush_error`]) — transient sink faults
    /// that backoff recovered stay observable here.
    pub wal_flush_retries: u32,
}

/// The Collaborative Query Management System.
pub struct Cqms {
    /// The live tunables.
    pub config: CqmsConfig,
    /// The underlying DBMS holding the *data* (Fig. 4 bottom box).
    pub data: Engine,
    /// The Query Storage (Fig. 4 centre box).
    pub storage: QueryStorage,
    /// Users, groups and ACL checks (§2.4).
    pub directory: Directory,
    profiler: Profiler,
    rules: RuleMiner,
    /// Latest mined state consumed by the assisted mode. Behind an `Arc`
    /// so a [`crate::snapshot::ReadSnapshot`] shares it for free.
    last_rules: Arc<Vec<AssocRule>>,
    last_clustering: Option<(Vec<QueryId>, ClusteringResult)>,
    baseline_stats: HashMap<String, TableStats>,
    /// Internal trace clock (seconds); advances when callers do not supply
    /// explicit timestamps.
    clock: u64,
    /// What crash recovery found and did, when this CQMS was built by
    /// [`Cqms::open`] (None for pure-RAM instances).
    recovery: Option<RecoveryReport>,
}

impl Cqms {
    /// Wrap an existing data engine in a CQMS.
    pub fn new(data: Engine, config: CqmsConfig) -> Self {
        let mut storage = QueryStorage::new();
        storage.set_override_publish_threshold(config.override_publish_threshold);
        Cqms {
            config,
            data,
            storage,
            directory: Directory::new(),
            profiler: Profiler::new(),
            rules: RuleMiner::new(),
            last_rules: Arc::new(Vec::new()),
            last_clustering: None,
            baseline_stats: HashMap::new(),
            clock: 0,
            recovery: None,
        }
    }

    /// Open (or create) a *durable* CQMS whose query history lives in
    /// `dir`: load the newest snapshot, replay the write-ahead log past
    /// its horizon (truncating any torn tail), and attach the log so
    /// every subsequent mutation is re-logged. See [`crate::wal`].
    ///
    /// Not persisted (by design, matching the snapshot format): the
    /// user/group [`Directory`] — deployments re-register principals at
    /// startup in the same order, which reproduces the same dense ids —
    /// plus output summaries and mined state, which the maintenance and
    /// miner passes re-derive.
    ///
    /// ```
    /// use cqms_core::{Cqms, CqmsConfig};
    /// use relstore::Engine;
    ///
    /// let dir = std::env::temp_dir().join(format!("cqms-open-doc-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let mut cqms = Cqms::open(Engine::new(), CqmsConfig::default(), &dir).unwrap();
    /// let user = cqms.register_user("alice");
    /// cqms.run_query(user, "SELECT * FROM Lakes").unwrap();
    /// cqms.wal_flush().unwrap(); // durability point (the service layer does this per batch)
    /// drop(cqms);
    ///
    /// // A later process reopens the directory and the history is back.
    /// let reopened = Cqms::open(Engine::new(), CqmsConfig::default(), &dir).unwrap();
    /// assert_eq!(reopened.storage.len(), 1);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// ```
    pub fn open(
        data: Engine,
        config: CqmsConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, CqmsError> {
        let wal::Recovered { storage, report } = wal::open_dir(dir.as_ref(), config.wal_fsync)?;
        let mut cqms = Cqms::new(data, config);
        // Trace time must never run backwards across a restart: resume
        // the clock past every recovered timestamp.
        cqms.clock = storage
            .iter()
            .map(|r| {
                r.ts.max(r.annotations.iter().map(|a| a.at).max().unwrap_or(0))
            })
            .max()
            .unwrap_or(0);
        // Re-feed the rule miner's transaction log from the recovered
        // live records (mined state is derived, not persisted).
        for rec in storage.iter_live() {
            let items = rec.features.items();
            if !items.is_empty() {
                cqms.rules.add_transaction(items);
            }
        }
        cqms.storage = storage;
        cqms.storage
            .set_override_publish_threshold(cqms.config.override_publish_threshold);
        cqms.recovery = Some(report);
        Ok(cqms)
    }

    /// The crash-recovery report, when this CQMS was built by
    /// [`Cqms::open`] — the operator's one-line answer to "what did
    /// replay do?" (render it with `{}`).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Make every logged mutation durable (no-op for pure-RAM instances).
    /// [`crate::service::CqmsService`] calls this once per write operation
    /// / ingest batch before acknowledging the caller.
    pub fn wal_flush(&mut self) -> Result<(), CqmsError> {
        self.storage.wal_flush()
    }

    /// Has enough been logged since the last snapshot that the miner
    /// epoch should write a new one?
    pub fn wal_snapshot_due(&self) -> bool {
        self.storage.wal_attached()
            && self.config.snapshot_every_ops > 0
            && self.storage.wal_ops_since_snapshot() >= self.config.snapshot_every_ops
    }

    /// Write a durable snapshot *now* and truncate the log behind it
    /// (the operator's "force a snapshot" lever; the background path in
    /// [`spawn_background_miner`] prefers the off-lock route). Returns
    /// `false` for pure-RAM instances. A transient write fault is retried
    /// with capped exponential backoff
    /// ([`CqmsConfig::wal_retry_attempts`]) before surfacing.
    pub fn force_snapshot(&mut self) -> Result<bool, CqmsError> {
        if !self.storage.wal_attached() {
            return Ok(false);
        }
        let mut body = Vec::new();
        self.storage.snapshot(&mut body)?;
        let horizon = self.storage.wal_last_lsn().unwrap_or(0);
        let (attempts, base_ms) = (
            self.config.wal_retry_attempts,
            self.config.wal_retry_base_ms,
        );
        let (written, _retries) =
            crate::admission::retry_with_backoff(attempts, base_ms, base_ms * 8, || {
                self.storage.wal_write_snapshot(horizon, &body)
            });
        written?;
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Traditional Interaction Mode (§2.1)
    // ------------------------------------------------------------------

    /// Execute a query on behalf of `user` at the internal clock, which
    /// advances by 30 seconds per call (tests and examples that care about
    /// session boundaries use [`Cqms::run_query_at`]).
    ///
    /// The tick applies on *every* path, including failed profiling: a
    /// failed attempt still consumed trace time, and skipping the tick on
    /// errors would let a later successful query reuse the same timestamp
    /// (breaking monotonic trace time and session-gap accounting).
    pub fn run_query(&mut self, user: UserId, sql: &str) -> Result<ProfiledQuery, CqmsError> {
        let ts = self.clock + 30;
        self.run_query_at(user, sql, ts)
    }

    /// Execute a query at an explicit trace time (seconds).
    pub fn run_query_at(
        &mut self,
        user: UserId,
        sql: &str,
        ts: u64,
    ) -> Result<ProfiledQuery, CqmsError> {
        // Advance the clock before the fallible profiling call so error
        // paths observe the same monotonic trace time as successes.
        self.clock = self.clock.max(ts);
        let visibility = self.default_visibility(user);
        let out = self.profiler.profile(
            &self.config,
            &mut self.storage,
            &mut self.data,
            user,
            visibility,
            sql,
            ts,
        )?;
        // Feed the miner's transaction log.
        if let Ok(rec) = self.storage.get(out.id) {
            let items = rec.features.items();
            if !items.is_empty() {
                self.rules.add_transaction(items);
            }
        }
        // Keep snapshot publication cheap: once enough per-write COW
        // deltas pile up, fold them into the sealed (structurally shared)
        // layers. See `CqmsConfig::snapshot_head_limit`.
        self.storage
            .maybe_seal_cow_heads(self.config.snapshot_head_limit);
        Ok(out)
    }

    /// Default visibility for a user's queries: their first group when they
    /// belong to one, otherwise public (a lab-wide deployment default).
    fn default_visibility(&self, user: UserId) -> Visibility {
        match self.directory.user(user) {
            Some(info) => match info.groups.first() {
                Some(g) => Visibility::Group(*g),
                None => Visibility::Public,
            },
            None => Visibility::Public,
        }
    }

    /// Annotate a query (whole or fragment, §2.1). Any user who can see the
    /// query may annotate it (collaborative documentation).
    pub fn annotate(
        &mut self,
        actor: UserId,
        id: QueryId,
        text: &str,
        fragment: Option<&str>,
    ) -> Result<(), CqmsError> {
        let visible = {
            let rec = self.storage.get(id)?;
            self.directory.can_see(actor, rec)
        };
        if !visible {
            return Err(CqmsError::NotAuthorized {
                user: actor.0,
                what: format!("query {id}"),
            });
        }
        let at = self.clock;
        self.storage.annotate(
            id,
            Annotation {
                author: actor,
                at,
                text: text.to_string(),
                fragment: fragment.map(String::from),
            },
        )
    }

    // ------------------------------------------------------------------
    // Search & Browse Interaction Mode (§2.2)
    // ------------------------------------------------------------------

    /// TF-IDF keyword search over logged query text.
    pub fn search_keyword(&self, user: UserId, query: &str, k: usize) -> Vec<ScoredHit> {
        MetaQueryExecutor::new(&self.storage, &self.directory, &self.config).keyword(user, query, k)
    }

    /// Corpus statistics of this instance's text index for `query`: live
    /// document count and per-term document frequencies. A sharded
    /// deployment sums these across shards and feeds the totals to
    /// [`Cqms::search_keyword_with_corpus`] so keyword scores are
    /// shard-placement independent.
    pub fn keyword_corpus_stats(&self, query: &str) -> (u64, HashMap<String, u64>) {
        let ix = self.storage.text_index();
        (ix.len() as u64, ix.query_term_dfs(query))
    }

    /// [`Cqms::search_keyword`] with externally supplied corpus statistics
    /// (the cross-shard global-IDF path).
    pub fn search_keyword_with_corpus(
        &self,
        user: UserId,
        query: &str,
        k: usize,
        total_docs: u64,
        df: &HashMap<String, u64>,
    ) -> Vec<ScoredHit> {
        MetaQueryExecutor::new(&self.storage, &self.directory, &self.config)
            .keyword_with_corpus(user, query, k, total_docs, df)
    }

    /// Exact substring search over logged query text.
    pub fn search_substring(&self, user: UserId, needle: &str) -> Vec<QueryId> {
        MetaQueryExecutor::new(&self.storage, &self.directory, &self.config).substring(user, needle)
    }

    /// Run a SQL meta-query over the Figure 1 feature relations.
    pub fn search_feature_sql(
        &self,
        user: UserId,
        sql: &str,
    ) -> Result<relstore::QueryResult, CqmsError> {
        MetaQueryExecutor::new(&self.storage, &self.directory, &self.config)
            .by_feature_sql(user, sql)
    }

    /// §2.2: generate the feature meta-query for a partially typed query.
    pub fn generate_feature_query(&self, partial_sql: &str) -> Result<String, CqmsError> {
        MetaQueryExecutor::new(&self.storage, &self.directory, &self.config)
            .generate_feature_query(partial_sql)
    }

    /// Structural search by parse-tree pattern.
    pub fn search_parse_tree(&self, user: UserId, pattern: &TreePattern) -> Vec<QueryId> {
        MetaQueryExecutor::new(&self.storage, &self.directory, &self.config)
            .by_parse_tree(user, pattern)
    }

    /// Query-by-data with optional re-execution of sampled candidates
    /// (re-execution stays on the engine's read-only path).
    pub fn search_by_data(
        &self,
        user: UserId,
        include: &[&str],
        exclude: &[&str],
        reexecute: bool,
    ) -> Vec<QueryId> {
        MetaQueryExecutor::new(&self.storage, &self.directory, &self.config).by_data(
            user,
            include,
            exclude,
            reexecute.then_some(&self.data),
        )
    }

    /// kNN similar queries to arbitrary SQL text.
    pub fn similar_queries(
        &self,
        user: UserId,
        sql: &str,
        k: usize,
        metric: DistanceKind,
    ) -> Result<Vec<ScoredHit>, CqmsError> {
        MetaQueryExecutor::new(&self.storage, &self.directory, &self.config)
            .knn_sql(user, sql, k, metric)
    }

    /// Figure 2 session window.
    pub fn render_session(&self, session: SessionId) -> Result<String, CqmsError> {
        viz::render_session(&self.storage, session)
    }

    /// Browse view over the whole log.
    pub fn render_log_summary(&self, max_sessions: usize) -> String {
        viz::render_log_summary(&self.storage, max_sessions)
    }

    // ------------------------------------------------------------------
    // Assisted Interaction Mode (§2.3)
    // ------------------------------------------------------------------

    /// Completions for partial SQL (Fig. 3 dropdown).
    pub fn complete(&self, _user: UserId, partial_sql: &str, k: usize) -> Vec<Suggestion> {
        CompletionEngine::new(&self.storage, &self.rules, &self.config, &self.data)
            .suggest(partial_sql, k)
    }

    /// Identifier spell-check (Fig. 3 "Corrections").
    pub fn check_identifiers(&self, sql: &str) -> Vec<Correction> {
        CorrectionEngine::new(&self.storage).check_identifiers(&self.data, sql)
    }

    /// Empty-result repair suggestions.
    pub fn repair_empty_result(&self, sql: &str, k: usize) -> Vec<RepairSuggestion> {
        CorrectionEngine::new(&self.storage).repair_empty_result(&self.data, sql, k)
    }

    /// The Figure 3 "Similar Queries" panel for a query being composed.
    pub fn recommend(
        &self,
        user: UserId,
        seed_sql: &str,
        k: usize,
    ) -> Result<Vec<PanelRow>, CqmsError> {
        recommend_panel(
            &self.storage,
            &self.directory,
            &self.config,
            user,
            seed_sql,
            k,
        )
    }

    /// Render a recommendation panel as text (Fig. 3).
    pub fn render_recommendations(
        &self,
        user: UserId,
        seed_sql: &str,
        k: usize,
    ) -> Result<String, CqmsError> {
        Ok(viz::render_panel(&self.recommend(user, seed_sql, k)?))
    }

    /// Auto-generated dataset tutorial (§2.3).
    pub fn tutorial(&self, queries_per_relation: usize) -> String {
        crate::miner::tutorial::generate_tutorial(&self.storage, &self.data, queries_per_relation)
    }

    // ------------------------------------------------------------------
    // Query Miner (§4.3)
    // ------------------------------------------------------------------

    /// Run one miner epoch: execute any scheduled index rebuild, refresh
    /// association rules, re-cluster the log, refine session boundaries,
    /// mine edit patterns.
    pub fn run_miner_epoch(&mut self) -> MinerReport {
        self.miner_epoch(true)
    }

    /// The epoch body. `execute_rebuild` controls whether a scheduled
    /// index rebuild runs *inline* (synchronous callers, who already
    /// hold exclusive access and expect the epoch to leave the indexes
    /// fresh) or is left pending (the background miner thread, which
    /// must never build under the write lock — it defers to its own
    /// off-lock collect/build on the next cycle instead of stalling
    /// every reader for the O(n log n) build).
    pub(crate) fn miner_epoch(&mut self, execute_rebuild: bool) -> MinerReport {
        // Scheduled index maintenance first (tombstone threshold,
        // reindex, summary refresh): the rebuild the query path only
        // ever *requests* runs here, plus the queued posting
        // compactions.
        let index_rebuilt = if execute_rebuild {
            self.storage.run_index_maintenance()
        } else {
            self.storage.compact_postings();
            false
        };
        let mut report = MinerReport {
            index_rebuilt,
            index_generation: self.storage.index_generation(),
            ..MinerReport::default()
        };

        // Association rules.
        self.last_rules = self.rules.mine(
            self.config.assoc_min_support,
            self.config.assoc_min_confidence,
        );
        // Epochs are the natural seal point for the storage's COW heads:
        // collapse accumulated per-write deltas so the next snapshot
        // publish is O(1) clones again.
        self.storage.seal_cow_heads();
        report.association_rules = self.last_rules.len();

        // Clustering over live queries. The O(n²) distance matrix runs on
        // precomputed similarity signatures (sorted-id merges), not on the
        // records — this is the §4.3 hot loop the signatures exist for.
        let ids: Vec<QueryId> = self.storage.iter_live().map(|r| r.id).collect();
        if ids.len() >= 4 {
            let sigs: Vec<&crate::signature::SimSignature> = ids
                .iter()
                .map(|id| self.storage.signature(*id).expect("signature per record"))
                .collect();
            let n = sigs.len();
            let mut dist = vec![vec![0.0f64; n]; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    // Bloom screen: disjoint blooms prove the feature sets
                    // disjoint, collapsing the merge to the O(1) emptiness
                    // pattern (bit-identical to the full merge).
                    let d = if sigs[i].feature_bloom & sigs[j].feature_bloom == 0 {
                        crate::similarity::feature_distance_disjoint(sigs[i], sigs[j], &self.config)
                    } else {
                        crate::similarity::feature_distance_sig(sigs[i], sigs[j], &self.config)
                    };
                    dist[i][j] = d;
                    dist[j][i] = d;
                }
            }
            let k = if self.config.cluster_k > 0 {
                self.config.cluster_k
            } else {
                (((n as f64) / 2.0).sqrt().round() as usize).max(2)
            };
            let clustering =
                cluster::kmedoids(&dist, k, self.config.cluster_max_iters, self.config.seed);
            report.clusters = clustering.medoids.len();
            report.clustering_cost = clustering.cost;
            self.last_clustering = Some((ids, clustering));
        }

        // Offline session refinement.
        let refined = sessions::segment_log(&self.storage, &self.config);
        let changed = refined
            .iter()
            .filter(|(id, s)| {
                self.storage
                    .get(**id)
                    .map(|r| r.session != **s)
                    .unwrap_or(false)
            })
            .count();
        if changed > 0 {
            self.storage.adopt_sessions(&refined);
        }
        report.sessions_refined = changed;

        // Edit patterns.
        let patterns = EditPatternMiner::mine(&self.storage);
        report.edit_edges_mined = patterns.edges_seen();

        // Periodic durability: synchronous epochs write due snapshots
        // inline (the caller holds exclusive access anyway); the
        // background thread skips this and uses the off-lock
        // collect/write/mark path instead.
        if execute_rebuild && self.wal_snapshot_due() {
            report.snapshot_written = self.force_snapshot().unwrap_or(false);
        }

        report
    }

    /// The latest mined association rules.
    pub fn association_rules(&self) -> &[AssocRule] {
        &self.last_rules
    }

    /// The latest clustering (query ids + assignment), if any.
    pub fn clustering(&self) -> Option<&(Vec<QueryId>, ClusteringResult)> {
        self.last_clustering.as_ref()
    }

    /// Cluster whole sessions (§4.3). `k = 0` picks √(n/2).
    pub fn cluster_sessions(&self, k: usize) -> (Vec<SessionId>, ClusteringResult) {
        let n = self.storage.session_ids().len();
        let k = if k > 0 {
            k
        } else {
            (((n as f64) / 2.0).sqrt().round() as usize).max(2)
        };
        cluster::cluster_sessions(
            &self.storage,
            k,
            self.config.cluster_max_iters,
            self.config.seed,
        )
    }

    /// Record an *investigation* relation between two queries (§4.1: "the
    /// latter query investigates why certain tuples are included in the
    /// first query's output"). Both queries must be visible to `actor`.
    pub fn mark_investigation(
        &mut self,
        actor: UserId,
        from: QueryId,
        to: QueryId,
    ) -> Result<(), CqmsError> {
        for id in [from, to] {
            let rec = self.storage.get(id)?;
            if !self.directory.can_see(actor, rec) {
                return Err(CqmsError::NotAuthorized {
                    user: actor.0,
                    what: format!("query {id}"),
                });
            }
        }
        self.storage.add_edge(SessionEdge {
            from,
            to,
            kind: EdgeKind::Investigation,
            edits: Vec::new(),
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Query Maintenance (§4.4)
    // ------------------------------------------------------------------

    /// Run a maintenance pass: schema scan + drift-triggered statistics
    /// refresh + quality recomputation.
    pub fn run_maintenance(&mut self) -> Result<(MaintenanceReport, RefreshReport), CqmsError> {
        self.run_maintenance_with_basis(None)
    }

    /// [`Cqms::run_maintenance`] with an externally supplied latency
    /// basis for the quality pass. Sharded deployments pass the merged
    /// global basis so the efficiency percentile — a corpus-wide
    /// statistic — matches a single instance record for record; `None`
    /// ranks against this store's own latencies.
    pub fn run_maintenance_with_basis(
        &mut self,
        basis: Option<&[u64]>,
    ) -> Result<(MaintenanceReport, RefreshReport), CqmsError> {
        let schema_report = maintenance::scan_schema_changes(&mut self.storage, &self.data)?;
        let refresh_report = maintenance::refresh_statistics(
            &mut self.storage,
            &mut self.data,
            &mut self.baseline_stats,
            &self.config,
        )?;
        match basis {
            Some(b) => maintenance::recompute_quality_with(&mut self.storage, b),
            None => maintenance::recompute_quality(&mut self.storage),
        }
        Ok((schema_report, refresh_report))
    }

    // ------------------------------------------------------------------
    // Administrative Interaction Mode (§2.4)
    // ------------------------------------------------------------------

    /// Register (or look up) a user by name.
    pub fn register_user(&mut self, name: &str) -> UserId {
        self.directory.create_user(name)
    }

    /// Create a collaboration group.
    pub fn create_group(&mut self, name: &str) -> GroupId {
        self.directory.create_group(name)
    }

    /// Add a user to a group.
    pub fn join_group(&mut self, user: UserId, group: GroupId) -> Result<(), CqmsError> {
        self.directory.join_group(user, group)
    }

    /// Change a query's visibility (owner or admin only).
    pub fn set_visibility(
        &mut self,
        actor: UserId,
        id: QueryId,
        visibility: Visibility,
    ) -> Result<(), CqmsError> {
        let allowed = {
            let rec = self.storage.get(id)?;
            self.directory.can_modify(actor, rec)
        };
        if !allowed {
            return Err(CqmsError::NotAuthorized {
                user: actor.0,
                what: format!("query {id}"),
            });
        }
        self.storage.set_visibility(id, visibility)
    }

    /// Delete (tombstone) a query (owner or admin only, §2.4).
    pub fn delete_query(&mut self, actor: UserId, id: QueryId) -> Result<(), CqmsError> {
        let allowed = {
            let rec = self.storage.get(id)?;
            self.directory.can_modify(actor, rec)
        };
        if !allowed {
            return Err(CqmsError::NotAuthorized {
                user: actor.0,
                what: format!("query {id}"),
            });
        }
        self.storage.delete(id)
    }

    /// Current trace time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Capture an immutable, lock-free-readable view of this instance.
    /// All bulk state is structurally shared (COW containers and `Arc`s),
    /// so the cost is O(unsealed delta) — bounded by
    /// [`CqmsConfig::snapshot_head_limit`] — never O(log size). The
    /// service layer publishes one per write; see
    /// [`crate::snapshot::ReadSnapshot`].
    pub fn capture_snapshot(&self, epoch: u64) -> crate::snapshot::ReadSnapshot {
        crate::snapshot::ReadSnapshot {
            epoch,
            config: self.config.clone(),
            storage: self.storage.clone(),
            directory: self.directory.clone(),
            rules: self.rules.clone(),
            last_rules: Arc::clone(&self.last_rules),
            catalog: crate::assist::completion::CatalogView::of(&self.data),
            clock: self.clock,
        }
    }
}

/// Handle to a background miner thread (§3: "the Query Miner … runs in the
/// background … periodically").
///
/// Shutdown is graceful in both forms: [`BackgroundMiner::stop`] and simply
/// dropping the handle join the thread, and the miner runs one *final*
/// epoch on the way out so results mined from the latest ingested queries
/// are visible after shutdown. Every epoch — periodic or final — acquires
/// the write lock with a bounded retry and is skipped if the lock stays
/// held for the whole grace period (e.g. by the very thread doing the
/// join), so the miner can be delayed by a stuck client but stopping can
/// never deadlock.
pub struct BackgroundMiner {
    stop_tx: std::sync::mpsc::SyncSender<()>,
    handle: Option<std::thread::JoinHandle<usize>>,
}

impl BackgroundMiner {
    /// Stop the miner and return the number of epochs it completed
    /// (including the final shutdown epoch).
    pub fn stop(mut self) -> usize {
        self.join()
    }

    fn join(&mut self) -> usize {
        // The receiver may already be gone (thread exited); that's fine.
        let _ = self.stop_tx.send(());
        self.handle
            .take()
            .map(|h| h.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for BackgroundMiner {
    fn drop(&mut self) {
        self.join();
    }
}

/// A snapshot-publication hook: called with the write lock still held
/// after any background mutation, so the service layer can republish its
/// [`crate::snapshot::ReadSnapshot`] before readers can observe the lock
/// released. See [`spawn_background_miner_hooked`].
pub type SnapshotPublisher = Arc<dyn Fn(&Cqms) + Send + Sync>;

/// Write-lock retry budget of one normal background epoch: 500 × 2 ms ≈ 1 s.
const MINER_GRACE_ATTEMPTS: usize = 500;
/// Escalated budget once [`MINER_STARVATION_EPOCHS`] consecutive epochs were
/// skipped: a continuous writer storm hands the lock over in microsecond
/// windows, so a starving miner widens its net (~4 s) instead of skipping
/// forever. Still bounded — stopping the miner can never deadlock.
const MINER_ESCALATED_ATTEMPTS: usize = 2000;
/// Consecutive skipped epochs before the grace loop escalates.
const MINER_STARVATION_EPOCHS: usize = 3;

/// One miner epoch with a bounded write-lock retry (`attempts` × 2 ms grace).
///
/// The miner must never *block* on the CQMS lock: a client that stops (or
/// drops) the miner handle while holding a guard would otherwise deadlock
/// the join — the joiner waits on the miner, the miner waits on the write
/// lock, the lock waits on the joiner's guard. Transient contention still
/// gets its epoch via the retries; a lock held for the whole grace period
/// skips the epoch instead of hanging. Returns the epoch's report, or
/// `None` when the epoch was skipped.
///
/// A scheduled index rebuild is double-buffered here: the snapshot is
/// collected under a momentary read lock (cheap `Arc` clones), the
/// O(n log n) build of generation N+1 then runs with no lock held —
/// readers *and* writers keep working against generation N the whole
/// time — and the publish under the write lock only replays the
/// mid-build delta and performs the single atomic swap.
fn try_miner_epoch(
    cqms: &RwLock<Cqms>,
    attempts: usize,
    faults: &crate::faults::FaultPlan,
    publish: Option<&SnapshotPublisher>,
) -> Option<MinerReport> {
    // The miner.epoch failpoint fires before any lock is taken, so an
    // injected panic can never leave a guard behind (and the shim locks
    // are non-poisoning anyway). The background loop survives it via
    // catch_unwind; see `spawn_background_miner_with_faults`.
    if faults.hit(crate::faults::MINER_EPOCH).is_err() {
        return None;
    }
    let snapshot = cqms.try_read().and_then(|guard| {
        guard
            .storage
            .index_rebuild_pending()
            .then(|| guard.storage.collect_index_rebuild())
    });
    let mut build = snapshot.map(crate::indexreg::RebuildSnapshot::build); // off-lock
    for _ in 0..attempts {
        if let Some(mut guard) = cqms.try_write() {
            if let Some(b) = build.take() {
                // A racing explicit rebuild may have published newer
                // content already — a discarded build just leaves the
                // schedule pending for the next cycle.
                let _ = guard.storage.publish_index_rebuild(b);
            }
            // A rebuild that became pending after (or was invisible to)
            // the off-lock collect is *deferred* to the next cycle's
            // collect/build — never built inline under the write lock.
            let mut report = guard.miner_epoch(false);
            // The epoch may have re-logged state (session refinement);
            // flush so it is durable — retrying transient sink faults
            // with capped backoff first — and surface, never swallow, a
            // terminal failure: the caller decides how loudly to report.
            let (flush_attempts, base_ms) = (
                guard.config.wal_retry_attempts,
                guard.config.wal_retry_base_ms,
            );
            let (flushed, retries) =
                crate::admission::retry_with_backoff(flush_attempts, base_ms, base_ms * 8, || {
                    guard.wal_flush()
                });
            report.wal_flush_retries = retries;
            if let Err(e) = flushed {
                report.wal_flush_error = Some(e);
            }
            // Republish the service's read snapshot before the lock is
            // released: the epoch refreshed rules, rebuilt indexes and
            // refined sessions, all of which snapshot readers must see.
            if let Some(publish) = publish {
                publish(&guard);
            }
            drop(guard);
            // Durability rides the same seam: a due snapshot is written
            // off the hot path now that the epoch's write lock is gone.
            report.snapshot_written = try_wal_snapshot(cqms, faults);
            return Some(report);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    None
}

/// The background snapshot path, mirroring the index rebuild's
/// double-buffering: serialize the storage under a momentary read lock,
/// write + fsync the snapshot file with **no lock held** (readers and
/// writers keep working), then take a brief write lock only to rotate
/// and prune the log behind the now-durable snapshot. An in-memory sink
/// (no backing directory) falls back to the inline path — its "file
/// write" is a vector push, too cheap to double-buffer.
///
/// Every lock acquisition is a bounded try (the miner must never block,
/// see [`try_miner_epoch`]); a skipped snapshot just stays due for the
/// next cycle. Returns whether a snapshot was marked.
fn try_wal_snapshot(cqms: &RwLock<Cqms>, faults: &crate::faults::FaultPlan) -> bool {
    // Phase 1: collect (dir, horizon, body) under a momentary read lock.
    let collected = match cqms.try_read() {
        Some(guard) => {
            if !guard.wal_snapshot_due() {
                return false;
            }
            let mut body = Vec::new();
            if guard.storage.snapshot(&mut body).is_err() {
                return false;
            }
            Some((
                guard.storage.wal_snapshot_dir(),
                guard.storage.wal_last_lsn().unwrap_or(0),
                body,
                guard.config.wal_fsync,
                (
                    guard.config.wal_retry_attempts,
                    guard.config.wal_retry_base_ms,
                ),
            ))
        }
        None => None,
    };
    let Some((dir, horizon, body, fsync, (retry_attempts, retry_base_ms))) = collected else {
        return false;
    };
    match dir {
        Some(dir) => {
            // Phase 2: durable write, no lock held. Ops logged meanwhile
            // have lsn > horizon and replay on top of this snapshot.
            //
            // A previous cycle may have written+fsynced this very horizon
            // and then failed phase 3 (write lock never came free within
            // the grace period), orphaning an unmarked snapshot file.
            // Recovery already prefers that file — replay skips lsn ≤
            // horizon — so it is safe to *reuse* it and go straight to
            // marking instead of serialising and fsyncing it again.
            let already_written = wal::list_snapshots(&dir)
                .map(|snaps| snaps.iter().any(|(h, _)| *h == horizon))
                .unwrap_or(false);
            // The off-lock write retries transient faults (and consults
            // the wal.snapshot failpoint) with capped backoff: a snapshot
            // only stays due for the next cycle once backoff is spent.
            let (written, _retries) = crate::admission::retry_with_backoff(
                retry_attempts,
                retry_base_ms,
                retry_base_ms * 8,
                || {
                    if already_written {
                        return Ok(());
                    }
                    faults.hit(crate::faults::SNAPSHOT_WRITE)?;
                    wal::write_snapshot_file(&dir, horizon, &body, fsync)
                },
            );
            if written.is_err() {
                return false;
            }
            // Phase 3: brief write lock to rotate + prune.
            for _ in 0..500 {
                if let Some(mut guard) = cqms.try_write() {
                    return guard.storage.wal_mark_snapshot(horizon).is_ok();
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            false
        }
        None => {
            for _ in 0..500 {
                if let Some(mut guard) = cqms.try_write() {
                    return guard.force_snapshot().unwrap_or(false);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            false
        }
    }
}

/// Spawn a miner thread that runs an epoch every `interval` until stopped.
///
/// Starvation resilience: every skipped epoch (grace period exhausted under
/// writer pressure) bumps a consecutive-skip counter; after
/// `MINER_STARVATION_EPOCHS` skips the next attempts run with the
/// escalated (but still bounded) retry budget until an epoch lands. A WAL
/// flush failure surfaced by an epoch is logged here — the background
/// thread has no caller to return the report to.
pub fn spawn_background_miner(cqms: Arc<RwLock<Cqms>>, interval: Duration) -> BackgroundMiner {
    spawn_background_miner_with_faults(cqms, interval, crate::faults::global_plan())
}

/// [`spawn_background_miner_with_faults`] without a publication hook.
pub fn spawn_background_miner_with_faults(
    cqms: Arc<RwLock<Cqms>>,
    interval: Duration,
    faults: Arc<crate::faults::FaultPlan>,
) -> BackgroundMiner {
    spawn_background_miner_hooked(cqms, interval, faults, None)
}

/// [`spawn_background_miner`] with an explicit fault plan (the service
/// layer passes its own, so per-service failpoints reach the miner) and
/// an optional snapshot-publication hook, invoked with the write lock
/// still held after every completed epoch. The
/// loop runs each epoch under `catch_unwind`: an epoch that panics — a
/// mining bug, or the `miner.epoch` failpoint armed with a panic — is
/// counted as a skipped epoch and the miner keeps running, instead of
/// dying silently and letting rules/snapshots go permanently stale. (The
/// lock shims are non-poisoning, and the failpoint fires before any lock
/// is taken, so a panicking epoch can never wedge the lock.)
pub fn spawn_background_miner_hooked(
    cqms: Arc<RwLock<Cqms>>,
    interval: Duration,
    faults: Arc<crate::faults::FaultPlan>,
    publish: Option<SnapshotPublisher>,
) -> BackgroundMiner {
    let (stop_tx, stop_rx) = std::sync::mpsc::sync_channel::<()>(1);
    let handle = std::thread::spawn(move || {
        let mut epochs = 0usize;
        let mut skipped = 0usize;
        let run_one = |attempts: usize, skipped: &mut usize| -> bool {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                try_miner_epoch(&cqms, attempts, &faults, publish.as_ref())
            }));
            match outcome {
                Ok(Some(report)) => {
                    *skipped = 0;
                    if let Some(e) = &report.wal_flush_error {
                        eprintln!("cqms background miner: WAL flush failed after epoch: {e}");
                    }
                    true
                }
                Ok(None) => {
                    *skipped += 1;
                    false
                }
                Err(_) => {
                    eprintln!("cqms background miner: epoch panicked; surviving");
                    *skipped += 1;
                    false
                }
            }
        };
        loop {
            let attempts = if skipped >= MINER_STARVATION_EPOCHS {
                MINER_ESCALATED_ATTEMPTS
            } else {
                MINER_GRACE_ATTEMPTS
            };
            match stop_rx.recv_timeout(interval) {
                Ok(()) => {
                    // Graceful stop: one final (best-effort) epoch over
                    // everything ingested since the last periodic run.
                    if run_one(attempts, &mut skipped) {
                        epochs += 1;
                    }
                    break;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if run_one(attempts, &mut skipped) {
                        epochs += 1;
                    }
                }
            }
        }
        epochs
    });
    BackgroundMiner {
        stop_tx,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Domain;

    fn cqms() -> Cqms {
        let mut engine = Engine::new();
        Domain::Lakes.setup(&mut engine, 80, 2);
        Cqms::new(engine, CqmsConfig::default())
    }

    #[test]
    fn end_to_end_traditional_mode() {
        let mut c = cqms();
        let alice = c.register_user("alice");
        let out = c
            .run_query(alice, "SELECT lake, temp FROM WaterTemp WHERE temp < 18")
            .unwrap();
        assert!(out.result.is_some());
        assert_eq!(c.storage.live_count(), 1);
        // Searching finds it.
        let hits = c.search_keyword(alice, "temp", 5);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn group_visibility_end_to_end() {
        let mut c = cqms();
        let _root = c.register_user("root");
        let alice = c.register_user("alice");
        let bob = c.register_user("bob");
        let carol = c.register_user("carol");
        let lab = c.create_group("lab");
        c.join_group(alice, lab).unwrap();
        c.join_group(bob, lab).unwrap();
        // Alice's queries default to her group.
        let out = c
            .run_query(alice, "SELECT * FROM WaterSalinity WHERE salinity > 0.3")
            .unwrap();
        assert_eq!(
            c.storage.get(out.id).unwrap().visibility,
            Visibility::Group(lab)
        );
        assert_eq!(c.search_substring(bob, "salinity").len(), 1);
        assert!(c.search_substring(carol, "salinity").is_empty());
        // Carol can't annotate or delete it either.
        assert!(c.annotate(carol, out.id, "sneaky", None).is_err());
        assert!(c.delete_query(carol, out.id).is_err());
        // Alice makes it public.
        c.set_visibility(alice, out.id, Visibility::Public).unwrap();
        assert_eq!(c.search_substring(carol, "salinity").len(), 1);
    }

    #[test]
    fn miner_epoch_produces_rules_and_clusters() {
        let mut c = cqms();
        let u = c.register_user("u");
        for i in 0..8 {
            c.run_query(
                u,
                &format!(
                    "SELECT * FROM WaterSalinity S, WaterTemp T \
                     WHERE S.loc_x = T.loc_x AND T.temp < {}",
                    10 + i
                ),
            )
            .unwrap();
        }
        for i in 0..6 {
            c.run_query(
                u,
                &format!("SELECT city FROM CityLocations WHERE pop > {i}"),
            )
            .unwrap();
        }
        let report = c.run_miner_epoch();
        assert!(report.association_rules > 0);
        assert!(report.clusters >= 2);
        assert!(report.edit_edges_mined > 0);
        // The planted-style rule is discoverable.
        assert!(c
            .association_rules()
            .iter()
            .any(|r| r.consequent == "table:watertemp"));
    }

    #[test]
    fn maintenance_pass_repairs_and_scores() {
        let mut c = cqms();
        let u = c.register_user("u");
        let out = c
            .run_query(u, "SELECT temp FROM WaterTemp WHERE temp < 18")
            .unwrap();
        c.data
            .execute("ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature")
            .unwrap();
        let (schema, _refresh) = c.run_maintenance().unwrap();
        assert_eq!(schema.repaired, vec![out.id]);
        let rec = c.storage.get(out.id).unwrap();
        assert!(rec.raw_sql.contains("temperature"));
        assert!(rec.quality > 0.0);
    }

    #[test]
    fn background_miner_runs_epochs() {
        let c = Arc::new(RwLock::new(cqms()));
        {
            let mut guard = c.write();
            let u = guard.register_user("u");
            for i in 0..5 {
                guard
                    .run_query(u, &format!("SELECT * FROM WaterTemp WHERE temp < {i}"))
                    .unwrap();
            }
        }
        let miner = spawn_background_miner(c.clone(), Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(60));
        let epochs = miner.stop();
        assert!(epochs >= 1, "no epochs ran");
        // State was actually mined.
        assert!(c.read().storage.live_count() == 5);
    }

    #[test]
    fn clock_ticks_on_failed_queries() {
        let mut c = cqms();
        let u = c.register_user("u");
        let t0 = c.now();
        // Engine error (unknown table): the attempt is logged as failed and
        // the 30-second tick still applies.
        let out = c.run_query(u, "SELECT * FROM NoSuchTable").unwrap();
        assert!(out.error.is_some());
        assert_eq!(c.now(), t0 + 30);
        // Parse error: logged, ticked.
        let out = c.run_query(u, "SELEC nope").unwrap();
        assert!(out.result.is_none());
        assert_eq!(c.now(), t0 + 60);
        // Explicit-timestamp failures advance the clock to their ts too.
        c.run_query_at(u, "SELECT * FROM NoSuchTable", t0 + 500)
            .unwrap();
        assert_eq!(c.now(), t0 + 500);
        // The next internal tick builds on the advanced clock: trace time
        // never repeats or goes backwards across mixed success/failure.
        c.run_query(u, "SELECT * FROM Lakes").unwrap();
        assert_eq!(c.now(), t0 + 530);
        // A stale explicit timestamp does not rewind the clock.
        c.run_query_at(u, "SELECT * FROM Lakes", t0).unwrap();
        assert_eq!(c.now(), t0 + 530);
    }

    #[test]
    fn internal_clock_monotonic() {
        let mut c = cqms();
        let u = c.register_user("u");
        c.run_query(u, "SELECT * FROM Lakes").unwrap();
        let t1 = c.now();
        c.run_query_at(u, "SELECT * FROM Lakes", t1 + 1000).unwrap();
        assert_eq!(c.now(), t1 + 1000);
        c.run_query(u, "SELECT * FROM Lakes").unwrap();
        assert!(c.now() > t1 + 1000);
    }
}
