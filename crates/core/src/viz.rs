//! Text renderings of the paper's client views.
//!
//! * [`render_session`] — the Figure 2 "query session window": nodes are the
//!   session's queries, edges show the parse-tree diff between consecutive
//!   queries;
//! * [`render_panel`] — the Figure 3 "Similar Queries" panel (score / query
//!   / diff / annotations columns);
//! * [`render_log_summary`] — the Search & Browse listing with sessions
//!   collapsed to one line each.

use crate::assist::recommend::PanelRow;
use crate::error::CqmsError;
use crate::model::SessionId;
use crate::storage::QueryStorage;
use std::fmt::Write;

/// Render one session as a Figure 2-style window.
///
/// ```text
/// session 3 (user 1, 4 queries, 02:30 - 02:35)
/// [q12] SELECT * FROM WaterTemp
///    |  +watersalinity
/// [q13] SELECT * FROM WaterTemp, WaterSalinity
///    |  'temp < 22' -> 'temp < 18'
/// [q14] ...
/// ```
pub fn render_session(storage: &QueryStorage, session: SessionId) -> Result<String, CqmsError> {
    let ids = storage.queries_in_session(session);
    if ids.is_empty() {
        return Err(CqmsError::NotFound(format!("session {session}")));
    }
    let first = storage.get(ids[0])?;
    let last = storage.get(*ids.last().unwrap())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "session {} (user {}, {} queries, {} - {})",
        session,
        first.user,
        ids.len(),
        fmt_clock(first.ts),
        fmt_clock(last.ts),
    );
    let edges = storage.session_edges(session);
    for (i, id) in ids.iter().enumerate() {
        let rec = storage.get(*id)?;
        let _ = writeln!(out, "[q{}] {}", id, truncate(&rec.raw_sql, 100));
        if i + 1 < ids.len() {
            // Edges from this query to the next, if recorded.
            let mut printed = false;
            for e in edges.iter().filter(|e| e.from == *id && e.to == ids[i + 1]) {
                match e.kind {
                    crate::model::EdgeKind::Evolution => {
                        for op in &e.edits {
                            let _ = writeln!(out, "   |  {}", op.label());
                            printed = true;
                        }
                    }
                    crate::model::EdgeKind::Investigation => {
                        let _ = writeln!(out, "   |  (investigates q{})", e.from);
                        printed = true;
                    }
                }
            }
            if !printed {
                let _ = writeln!(out, "   |");
            }
        }
    }
    Ok(out)
}

/// Render the Figure 3 recommendation panel.
///
/// ```text
/// Score  | Query                                    | Diff            | Annotations
/// [100%] | select * from WaterSalinity, ...         | none            | find temp and salinity of
/// [ 98%] | select temp from WaterTemp ...           | -1 col          | find temps of seattle lak
/// ```
pub fn render_panel(rows: &[PanelRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<7}| {:<50} | {:<16} | Annotations",
        "Score", "Query", "Diff"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "[{:>3}%] | {:<50} | {:<16} | {}",
            r.score_pct,
            truncate(&r.sql, 50),
            truncate(&r.diff, 16),
            truncate(&r.annotation, 28),
        );
    }
    out
}

/// Browse view: one line per session ("present query sessions instead of
/// individual queries", §2.2).
pub fn render_log_summary(storage: &QueryStorage, max_sessions: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} queries in {} sessions",
        storage.live_count(),
        storage.session_ids().len()
    );
    for session in storage.session_ids().into_iter().take(max_sessions) {
        let ids = storage.queries_in_session(session);
        let Some(&first_id) = ids.first() else {
            continue;
        };
        let Ok(first) = storage.get(first_id) else {
            continue;
        };
        let Ok(last) = storage.get(*ids.last().unwrap()) else {
            continue;
        };
        let tables = last.features.tables.join(", ");
        let _ = writeln!(
            out,
            "  session {:>4} user {:>3} {:>3} queries {:>8}  [{}]  {}",
            session,
            first.user,
            ids.len(),
            fmt_clock(first.ts),
            tables,
            truncate(&last.raw_sql, 48),
        );
    }
    out
}

fn fmt_clock(ts: u64) -> String {
    let h = (ts / 3600) % 24;
    let m = (ts / 60) % 60;
    format!("{h:02}:{m:02}")
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        let mut t: String = s.chars().take(n.saturating_sub(3)).collect();
        t.push_str("...");
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;
    use crate::model::*;
    use crate::storage::make_record;
    use sqlparse::diff_statements;

    fn storage_with_figure2() -> QueryStorage {
        let mut st = QueryStorage::new();
        let sqls = workload::querygen::figure2_session();
        let mut prev: Option<(QueryId, sqlparse::Statement)> = None;
        for (i, sql) in sqls.iter().enumerate() {
            let stmt = sqlparse::parse(sql).unwrap();
            let feats = extract(&stmt, None);
            let id = QueryId(i as u64);
            st.insert(make_record(
                id,
                UserId(1),
                9000 + 60 * i as u64, // 02:30, 02:31, ... like the figure
                sql,
                Some(stmt.clone()),
                feats,
                RuntimeFeatures {
                    success: true,
                    ..Default::default()
                },
                OutputSummary::None,
                SessionId(0),
                Visibility::Public,
            ));
            if let Some((pid, pstmt)) = &prev {
                st.add_edge(SessionEdge {
                    from: *pid,
                    to: id,
                    kind: EdgeKind::Evolution,
                    edits: diff_statements(pstmt, &stmt),
                });
            }
            prev = Some((id, stmt));
        }
        st
    }

    #[test]
    fn session_window_shows_figure2_labels() {
        let st = storage_with_figure2();
        let viz = render_session(&st, SessionId(0)).unwrap();
        // Header with time range like the figure's 2:30—2:35 strip.
        assert!(viz.contains("02:30"), "{viz}");
        assert!(viz.contains("02:35"), "{viz}");
        // The signature edits of Figure 2.
        assert!(viz.contains("+watersalinity"), "{viz}");
        assert!(
            viz.contains("'watertemp.temp < 22' \u{2192} 'watertemp.temp < 10'"),
            "{viz}"
        );
        // Six nodes.
        assert_eq!(viz.matches("[q").count(), 6);
    }

    #[test]
    fn missing_session_errors() {
        let st = QueryStorage::new();
        assert!(render_session(&st, SessionId(9)).is_err());
    }

    #[test]
    fn panel_renders_columns() {
        let rows = vec![
            PanelRow {
                score_pct: 100,
                sql: "select * from WaterSalinity, WaterTemp".into(),
                diff: "none".into(),
                annotation: "find temp and salinity of seattle lakes".into(),
                id: QueryId(0),
            },
            PanelRow {
                score_pct: 75,
                sql: "select temp from watertemp".into(),
                diff: "-1 col, -1 pred".into(),
                annotation: String::new(),
                id: QueryId(1),
            },
        ];
        let panel = render_panel(&rows);
        assert!(panel.contains("[100%]"));
        assert!(panel.contains("[ 75%]"));
        assert!(panel.contains("-1 col, -1 pred"));
        assert!(panel.contains("Annotations"));
    }

    #[test]
    fn log_summary_collapses_sessions() {
        let st = storage_with_figure2();
        let s = render_log_summary(&st, 10);
        assert!(s.contains("6 queries in 1 sessions"));
        assert!(s.contains("session"), "{s}");
        assert!(s.contains("user 1"), "{s}");
    }
}
