//! Lock-free read snapshots: the one-`Arc` immutable view behind
//! [`crate::service::CqmsService`]'s read path.
//!
//! A [`ReadSnapshot`] bundles everything a meta-query needs — the COW
//! [`QueryStorage`] (records, session graph, popularity tables, text
//! indexes, structural index registry), the user [`Directory`], the rule
//! miner's transaction log and latest mined rules, a detached
//! [`CatalogView`] and the trace clock — into a single immutable value.
//! The write path captures one per mutation ([`crate::server::Cqms::
//! capture_snapshot`]) and publishes it behind an
//! `ArcSwap`-style slot; a reader clones **one `Arc` under a momentary
//! lock** and then runs entirely lock-free, never blocking on (or
//! being blocked by) writers, miner epochs, index rebuild publishes or
//! repair promotions.
//!
//! Capture cost is O(unsealed COW delta), bounded by
//! [`crate::config::CqmsConfig::snapshot_head_limit`], never O(log
//! size): all bulk state is structurally shared (`cqms_cow` containers
//! and `Arc`s).
//!
//! Reads that genuinely need the live `relstore` meta/data engine
//! (feature-SQL meta-queries, identifier spell-check, empty-result
//! repair, query-by-data with re-execution) stay on the service's
//! lock-retained path — a snapshot's storage is *detached* from the
//! engine by design.
//!
//! In debug builds every snapshot read marks the thread, and the
//! service's lock acquisitions assert the mark is absent, proving no
//! read path silently re-enters the shard lock after cloning its
//! snapshot.

use crate::admin::Directory;
use crate::assist::completion::{CatalogView, CompletionEngine, CompletionStats, Suggestion};
use crate::assist::recommend::{self, PanelRow};
use crate::config::CqmsConfig;
use crate::error::CqmsError;
use crate::metaquery::{MetaQueryExecutor, ScoredHit, TreePattern};
use crate::miner::assoc::{AssocRule, RuleMiner};
use crate::model::{QueryId, SessionId, UserId};
use crate::similarity::DistanceKind;
use crate::storage::QueryStorage;
use std::collections::HashMap;
use std::sync::Arc;

#[cfg(debug_assertions)]
thread_local! {
    /// Nesting depth of in-flight snapshot reads on this thread.
    static SNAPSHOT_READ_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// RAII marker: "this thread is inside a snapshot read". Compiled away
/// in release builds.
struct ReadScope;

impl ReadScope {
    fn enter() -> ReadScope {
        #[cfg(debug_assertions)]
        SNAPSHOT_READ_DEPTH.with(|d| d.set(d.get() + 1));
        ReadScope
    }
}

impl Drop for ReadScope {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        SNAPSHOT_READ_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Debug-build proof that snapshot reads are lock-free: the service's
/// lock acquisitions call this, so a read path that re-acquired the
/// shard lock after cloning its snapshot panics in tests instead of
/// silently re-serialising.
pub(crate) fn assert_not_inside_snapshot_read(_what: &str) {
    #[cfg(debug_assertions)]
    SNAPSHOT_READ_DEPTH.with(|d| {
        assert_eq!(
            d.get(),
            0,
            "{_what} acquired the shard lock inside a ReadSnapshot read; \
             snapshot reads must stay lock-free"
        );
    });
}

/// An immutable, lock-free-readable view of one CQMS instance at a
/// publication epoch. Cheap to hold: readers pin at most a few sealed
/// `Arc` layers, so writer churn after capture costs them nothing.
pub struct ReadSnapshot {
    /// Publication epoch (monotonic per service; bumped on every write,
    /// index-rebuild publish and repair promotion).
    pub(crate) epoch: u64,
    pub(crate) config: CqmsConfig,
    pub(crate) storage: QueryStorage,
    pub(crate) directory: Directory,
    pub(crate) rules: RuleMiner,
    pub(crate) last_rules: Arc<Vec<AssocRule>>,
    pub(crate) catalog: CatalogView,
    pub(crate) clock: u64,
}

impl std::fmt::Debug for ReadSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadSnapshot")
            .field("epoch", &self.epoch)
            .field("live", &self.storage.live_count())
            .field("clock", &self.clock)
            .finish()
    }
}

impl ReadSnapshot {
    /// The publication epoch this snapshot was captured at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Trace time at capture.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Live (non-tombstoned) logged queries at capture.
    pub fn live_count(&self) -> usize {
        let _scope = ReadScope::enter();
        self.storage.live_count()
    }

    /// The structural-index generation the snapshot serves from. Read
    /// from the snapshot's own pinned sealed generation — *not* the
    /// registry's live observability counter, which keeps advancing under
    /// held snapshots as rebuilds publish.
    pub fn index_generation(&self) -> u64 {
        let _scope = ReadScope::enter();
        self.storage.indexes().sealed().generation
    }

    /// The captured storage (for oracles and diagnostics; all methods on
    /// it are read-only here — the snapshot is immutable).
    pub fn storage(&self) -> &QueryStorage {
        &self.storage
    }

    /// The captured tunables.
    pub fn config(&self) -> &CqmsConfig {
        &self.config
    }

    /// The captured user/group directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The association rules mined by the latest epoch before capture.
    pub fn association_rules(&self) -> &[AssocRule] {
        &self.last_rules
    }

    fn executor(&self) -> MetaQueryExecutor<'_> {
        MetaQueryExecutor::new(&self.storage, &self.directory, &self.config)
    }

    // ------------------------------------------------------------------
    // Search & Browse (§2.2) — lock-free
    // ------------------------------------------------------------------

    /// TF-IDF keyword search over logged query text.
    pub fn search_keyword(&self, user: UserId, query: &str, k: usize) -> Vec<ScoredHit> {
        let _scope = ReadScope::enter();
        self.executor().keyword(user, query, k)
    }

    /// This snapshot's corpus statistics for `query` (see
    /// [`crate::server::Cqms::keyword_corpus_stats`]).
    pub fn keyword_corpus_stats(&self, query: &str) -> (u64, HashMap<String, u64>) {
        let _scope = ReadScope::enter();
        let ix = self.storage.text_index();
        (ix.len() as u64, ix.query_term_dfs(query))
    }

    /// Keyword search with externally supplied (cross-shard summed)
    /// corpus statistics.
    pub fn search_keyword_with_corpus(
        &self,
        user: UserId,
        query: &str,
        k: usize,
        total_docs: u64,
        df: &HashMap<String, u64>,
    ) -> Vec<ScoredHit> {
        let _scope = ReadScope::enter();
        self.executor()
            .keyword_with_corpus(user, query, k, total_docs, df)
    }

    /// Exact substring search over logged query text.
    pub fn search_substring(&self, user: UserId, needle: &str) -> Vec<QueryId> {
        let _scope = ReadScope::enter();
        self.executor().substring(user, needle)
    }

    /// Structural search by parse-tree pattern.
    pub fn search_parse_tree(&self, user: UserId, pattern: &TreePattern) -> Vec<QueryId> {
        let _scope = ReadScope::enter();
        self.executor().by_parse_tree(user, pattern)
    }

    /// Query-by-data over stored output summaries. Re-execution of
    /// sampled candidates needs the live engine — that variant stays on
    /// the service's lock-retained path.
    pub fn search_by_data(&self, user: UserId, include: &[&str], exclude: &[&str]) -> Vec<QueryId> {
        let _scope = ReadScope::enter();
        self.executor().by_data(user, include, exclude, None)
    }

    /// §2.2: generate the feature meta-query for a partially typed query.
    pub fn generate_feature_query(&self, partial_sql: &str) -> Result<String, CqmsError> {
        let _scope = ReadScope::enter();
        self.executor().generate_feature_query(partial_sql)
    }

    /// kNN similar queries to arbitrary SQL text.
    pub fn similar_queries(
        &self,
        user: UserId,
        sql: &str,
        k: usize,
        metric: DistanceKind,
    ) -> Result<Vec<ScoredHit>, CqmsError> {
        let _scope = ReadScope::enter();
        self.executor().knn_sql(user, sql, k, metric)
    }

    /// Figure 2 session window.
    pub fn render_session(&self, session: SessionId) -> Result<String, CqmsError> {
        let _scope = ReadScope::enter();
        crate::viz::render_session(&self.storage, session)
    }

    /// Browse view over the whole log.
    pub fn render_log_summary(&self, max_sessions: usize) -> String {
        let _scope = ReadScope::enter();
        crate::viz::render_log_summary(&self.storage, max_sessions)
    }

    // ------------------------------------------------------------------
    // Assisted mode (§2.3) — lock-free
    // ------------------------------------------------------------------

    fn completion_engine(&self) -> CompletionEngine<'_> {
        CompletionEngine::with_view(
            &self.storage,
            &self.rules,
            &self.config,
            self.catalog.clone(),
        )
    }

    /// Completions for partial SQL (Fig. 3 dropdown).
    pub fn complete(&self, _user: UserId, partial_sql: &str, k: usize) -> Vec<Suggestion> {
        let _scope = ReadScope::enter();
        self.completion_engine().suggest(partial_sql, k)
    }

    /// This shard's summable completion statistics for the probe (the
    /// exact cross-shard merge currency; see
    /// [`CompletionStats::merge`]).
    pub fn completion_stats(&self, partial_sql: &str) -> CompletionStats {
        let _scope = ReadScope::enter();
        self.completion_engine().collect_stats(partial_sql)
    }

    /// Completions scored from merged statistics — with this snapshot's
    /// own stats it equals [`ReadSnapshot::complete`] bit-for-bit.
    pub fn complete_with_stats(
        &self,
        partial_sql: &str,
        k: usize,
        stats: &CompletionStats,
    ) -> Vec<Suggestion> {
        let _scope = ReadScope::enter();
        self.completion_engine()
            .suggest_with_stats(partial_sql, k, stats)
    }

    /// The Figure 3 "Similar Queries" panel for a query being composed.
    pub fn recommend(
        &self,
        user: UserId,
        seed_sql: &str,
        k: usize,
    ) -> Result<Vec<PanelRow>, CqmsError> {
        let _scope = ReadScope::enter();
        recommend::recommend_panel(
            &self.storage,
            &self.directory,
            &self.config,
            user,
            seed_sql,
            k,
        )
    }

    /// This shard's panel candidate pool (top `m` Combined kNN hits).
    pub fn recommend_candidates(
        &self,
        user: UserId,
        seed_sql: &str,
        m: usize,
    ) -> Result<Vec<ScoredHit>, CqmsError> {
        let _scope = ReadScope::enter();
        recommend::knn_candidates(
            &self.storage,
            &self.directory,
            &self.config,
            user,
            seed_sql,
            m,
        )
    }

    /// Score local candidates with corpus-wide (cross-shard merged)
    /// ranking terms; see [`recommend::panel_rows_for`].
    pub fn recommend_rows_for(
        &self,
        seed_sql: &str,
        hits: &[(QueryId, f64)],
        now_ts: u64,
        max_pop: u32,
        popularity_of: &dyn Fn(u64) -> u32,
    ) -> Result<Vec<(f64, PanelRow)>, CqmsError> {
        let _scope = ReadScope::enter();
        recommend::panel_rows_for(
            &self.storage,
            &self.config,
            seed_sql,
            hits,
            now_ts,
            max_pop,
            popularity_of,
        )
    }

    /// Newest logged trace timestamp (the panel recency anchor).
    pub fn panel_now_ts(&self) -> u64 {
        let _scope = ReadScope::enter();
        recommend::panel_now_ts(&self.storage)
    }

    /// The template popularity histogram (summable across shards).
    pub fn template_histogram(&self) -> Vec<(u64, u32)> {
        let _scope = ReadScope::enter();
        self.storage.template_histogram()
    }

    /// Sorted live-successful latencies — the quality pass's efficiency
    /// basis (concatenated across shards for merged maintenance).
    pub fn latency_basis(&self) -> Vec<u64> {
        let _scope = ReadScope::enter();
        crate::maintenance::latency_basis(&self.storage)
    }
}
