//! Durable write-ahead log + snapshot recovery for the Query Storage.
//!
//! The paper pitches CQMS as a *shared* service that preserves every
//! analyst's query history (§3–4); history that evaporates on a crash is
//! not preserved. This module adds the durability layer under
//! [`QueryStorage`]: every ingest-path mutation (insert, tombstone,
//! validity flip, visibility change, session edge, annotation, repair
//! re-index) is appended to a length-prefixed, CRC-checksummed binary log
//! *before* the caller's batch is acknowledged, and the store is rebuilt
//! on open by replaying the log on top of the newest snapshot.
//!
//! # Log format
//!
//! The log is a sequence of frames, each:
//!
//! ```text
//! [len: u32 LE] [crc32(body): u32 LE] [body: len bytes]
//! body = [lsn: u64 LE] [op tag: u8] [op payload]
//! ```
//!
//! LSNs are assigned monotonically by the [`WalWriter`]. A torn tail —
//! a frame cut short by a crash mid-write, or garbage past the last
//! durable frame — fails the length or checksum test and is truncated on
//! recovery; everything before it replays normally.
//!
//! # Snapshots and the horizon
//!
//! A snapshot file records the storage (in the established
//! [`QueryStorage::snapshot`] text format) plus the **horizon**: the LSN
//! of the last operation the snapshot includes. Recovery loads the newest
//! snapshot and replays only frames with `lsn > horizon`, which makes
//! replay idempotent — a log segment that overlaps the snapshot is
//! harmless. After a snapshot is durable the writer rotates to a fresh
//! segment and prunes segments that lie entirely at or below the horizon,
//! bounding log growth.
//!
//! # Sinks
//!
//! The writer targets a pluggable [`LogSink`]: [`FileSink`] appends to
//! numbered segment files in a directory (`wal-<lsn>.log`,
//! `snapshot-<lsn>.cqms`), [`MemSink`] keeps segments in memory with a
//! per-segment *synced length* so tests can simulate a crash (everything
//! past the last `sync` is discarded) without touching a filesystem.
//!
//! # Sharded deployments
//!
//! The framing above is deliberately shard-agnostic. A
//! [`crate::shard::ShardedCqms`] gives every shard its own directory
//! (`dir/shard-{i}/`) with an independent LSN space, segment rotation and
//! snapshot cadence; each shard recovers exactly like a single-node
//! deployment, and the global id stripe (`global = local × N + shard`) is
//! a pure function of the shard count, so nothing about sharding is — or
//! needs to be — persisted in the log.
//!
//! # What is (deliberately) not logged
//!
//! Matching the snapshot format's scope: output summaries (statistics,
//! re-creatable by maintenance refresh), runtime plan/error text, the
//! miner's session refinements ([`QueryStorage::adopt_sessions`] — the
//! miner re-derives them), mined rules/clusters, and the user/group
//! directory (deployments re-register principals at startup, which
//! reproduces the same dense ids).

use crate::error::CqmsError;
use crate::features::{self, SyntacticFeatures};
use crate::model::*;
use crate::storage::QueryStorage;
use parking_lot::Mutex;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Upper bound on a single frame body; anything larger is treated as a
/// corrupt length prefix (a random 4-byte value exceeds this with
/// probability ~15/16, so garbage tails fail fast).
const MAX_FRAME_LEN: usize = 1 << 28;

// ---------------------------------------------------------------------
// CRC32 (IEEE), table built at compile time — no external crates.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the per-frame checksum).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------

/// The logged image of a [`QueryStorage::insert`] — the same fields the
/// text snapshot persists per record (summaries and plan/error text are
/// derived or re-creatable state on both paths).
#[derive(Debug, Clone, PartialEq)]
pub struct InsertFrame {
    /// Dense record id (must equal the store length at apply time).
    pub id: QueryId,
    /// Author.
    pub user: UserId,
    /// Trace-time seconds.
    pub ts: u64,
    /// Session membership at insert time.
    pub session: SessionId,
    /// The raw SQL text; the statement, fingerprints and features are
    /// re-derived from it on replay, exactly as snapshot restore does.
    pub raw_sql: String,
    /// Access control at insert time.
    pub visibility: Visibility,
    /// Validity at insert time (tests insert pre-flagged records; the
    /// ingest path always inserts `Valid`).
    pub validity: Validity,
    /// Captured execution time (µs).
    pub elapsed_us: u64,
    /// Captured result cardinality.
    pub cardinality: u64,
    /// Did the execution succeed?
    pub success: bool,
    /// Quality score at insert time.
    pub quality: f64,
}

impl InsertFrame {
    /// Capture the durable image of a record about to be inserted.
    pub fn of(r: &QueryRecord) -> Self {
        InsertFrame {
            id: r.id,
            user: r.user,
            ts: r.ts,
            session: r.session,
            raw_sql: r.raw_sql.clone(),
            visibility: r.visibility,
            validity: r.validity.clone(),
            elapsed_us: r.runtime.elapsed_us,
            cardinality: r.runtime.cardinality,
            success: r.runtime.success,
            quality: r.quality,
        }
    }
}

/// One logged ingest-path mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A new record ([`QueryStorage::insert`]).
    Insert(Box<InsertFrame>),
    /// A tombstone ([`QueryStorage::delete`]).
    Tombstone {
        /// The tombstoned record.
        id: QueryId,
    },
    /// A maintenance validity flip ([`QueryStorage::set_validity`]).
    SetValidity {
        /// The affected record.
        id: QueryId,
        /// The new validity (never `Deleted`; that is a tombstone).
        validity: Validity,
    },
    /// An ACL change ([`QueryStorage::set_visibility`]).
    SetVisibility {
        /// The affected record.
        id: QueryId,
        /// The new visibility.
        visibility: Visibility,
    },
    /// A session-graph edge ([`QueryStorage::add_edge`]). Edit labels are
    /// re-derived from the endpoint statements on replay.
    Edge {
        /// Source query.
        from: QueryId,
        /// Target query.
        to: QueryId,
        /// Evolution vs. investigation.
        kind: EdgeKind,
    },
    /// An annotation ([`QueryStorage::annotate`]).
    Annotate {
        /// The annotated record.
        id: QueryId,
        /// Annotation author.
        author: UserId,
        /// Trace-time seconds.
        at: u64,
        /// Annotation body.
        text: String,
        /// Optional SQL fragment the annotation targets.
        fragment: Option<String>,
    },
    /// A re-index after an in-place rewrite ([`QueryStorage::reindex`] —
    /// the maintenance repair path). Carries the post-rewrite SQL; replay
    /// re-derives the statement, fingerprints and features from it.
    Reindex {
        /// The rewritten record.
        id: QueryId,
        /// The record's SQL *after* the rewrite.
        raw_sql: String,
    },
}

// --- payload primitives ---

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            put_u8(buf, 1);
            put_str(buf, s);
        }
        None => put_u8(buf, 0),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.pos < n {
            return Err("frame payload truncated".into());
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 string payload".to_string())
    }

    fn opt_str(&mut self) -> Result<Option<String>, String> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.str()?),
        })
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn put_visibility(buf: &mut Vec<u8>, v: Visibility) {
    match v {
        Visibility::Private => put_u8(buf, 0),
        Visibility::Public => put_u8(buf, 1),
        Visibility::Group(g) => {
            put_u8(buf, 2);
            put_u32(buf, g.0);
        }
    }
}

fn read_visibility(r: &mut Reader<'_>) -> Result<Visibility, String> {
    Ok(match r.u8()? {
        0 => Visibility::Private,
        1 => Visibility::Public,
        2 => Visibility::Group(GroupId(r.u32()?)),
        t => return Err(format!("bad visibility tag {t}")),
    })
}

fn put_validity(buf: &mut Vec<u8>, v: &Validity) {
    match v {
        Validity::Valid => put_u8(buf, 0),
        Validity::Flagged { reason, at } => {
            put_u8(buf, 1);
            put_str(buf, reason);
            put_u64(buf, *at);
        }
        Validity::Repaired { original_sql, at } => {
            put_u8(buf, 2);
            put_str(buf, original_sql);
            put_u64(buf, *at);
        }
        Validity::Obsolete { reason, at } => {
            put_u8(buf, 3);
            put_str(buf, reason);
            put_u64(buf, *at);
        }
        Validity::Deleted => put_u8(buf, 4),
    }
}

fn read_validity(r: &mut Reader<'_>) -> Result<Validity, String> {
    Ok(match r.u8()? {
        0 => Validity::Valid,
        1 => Validity::Flagged {
            reason: r.str()?,
            at: r.u64()?,
        },
        2 => Validity::Repaired {
            original_sql: r.str()?,
            at: r.u64()?,
        },
        3 => Validity::Obsolete {
            reason: r.str()?,
            at: r.u64()?,
        },
        4 => Validity::Deleted,
        t => return Err(format!("bad validity tag {t}")),
    })
}

impl WalOp {
    /// Append the tag + payload encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalOp::Insert(f) => {
                put_u8(buf, 1);
                put_u64(buf, f.id.0);
                put_u32(buf, f.user.0);
                put_u64(buf, f.ts);
                put_u64(buf, f.session.0);
                put_str(buf, &f.raw_sql);
                put_visibility(buf, f.visibility);
                put_validity(buf, &f.validity);
                put_u64(buf, f.elapsed_us);
                put_u64(buf, f.cardinality);
                put_u8(buf, u8::from(f.success));
                put_f64(buf, f.quality);
            }
            WalOp::Tombstone { id } => {
                put_u8(buf, 2);
                put_u64(buf, id.0);
            }
            WalOp::SetValidity { id, validity } => {
                put_u8(buf, 3);
                put_u64(buf, id.0);
                put_validity(buf, validity);
            }
            WalOp::SetVisibility { id, visibility } => {
                put_u8(buf, 4);
                put_u64(buf, id.0);
                put_visibility(buf, *visibility);
            }
            WalOp::Edge { from, to, kind } => {
                put_u8(buf, 5);
                put_u64(buf, from.0);
                put_u64(buf, to.0);
                put_u8(buf, matches!(kind, EdgeKind::Investigation) as u8);
            }
            WalOp::Annotate {
                id,
                author,
                at,
                text,
                fragment,
            } => {
                put_u8(buf, 6);
                put_u64(buf, id.0);
                put_u32(buf, author.0);
                put_u64(buf, *at);
                put_str(buf, text);
                put_opt_str(buf, fragment.as_deref());
            }
            WalOp::Reindex { id, raw_sql } => {
                put_u8(buf, 7);
                put_u64(buf, id.0);
                put_str(buf, raw_sql);
            }
        }
    }

    /// Decode a tag + payload (the frame body past the LSN). The whole
    /// payload must be consumed — trailing bytes mean corruption.
    fn decode(bytes: &[u8]) -> Result<WalOp, String> {
        let mut r = Reader::new(bytes);
        let op = match r.u8()? {
            1 => WalOp::Insert(Box::new(InsertFrame {
                id: QueryId(r.u64()?),
                user: UserId(r.u32()?),
                ts: r.u64()?,
                session: SessionId(r.u64()?),
                raw_sql: r.str()?,
                visibility: read_visibility(&mut r)?,
                validity: read_validity(&mut r)?,
                elapsed_us: r.u64()?,
                cardinality: r.u64()?,
                success: r.u8()? != 0,
                quality: r.f64()?,
            })),
            2 => WalOp::Tombstone {
                id: QueryId(r.u64()?),
            },
            3 => WalOp::SetValidity {
                id: QueryId(r.u64()?),
                validity: read_validity(&mut r)?,
            },
            4 => WalOp::SetVisibility {
                id: QueryId(r.u64()?),
                visibility: read_visibility(&mut r)?,
            },
            5 => WalOp::Edge {
                from: QueryId(r.u64()?),
                to: QueryId(r.u64()?),
                kind: if r.u8()? != 0 {
                    EdgeKind::Investigation
                } else {
                    EdgeKind::Evolution
                },
            },
            6 => WalOp::Annotate {
                id: QueryId(r.u64()?),
                author: UserId(r.u32()?),
                at: r.u64()?,
                text: r.str()?,
                fragment: r.opt_str()?,
            },
            7 => WalOp::Reindex {
                id: QueryId(r.u64()?),
                raw_sql: r.str()?,
            },
            t => return Err(format!("unknown op tag {t}")),
        };
        if !r.finished() {
            return Err("trailing bytes after op payload".into());
        }
        Ok(op)
    }
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

/// Append one framed `(lsn, op)` to `out`.
pub fn encode_frame(out: &mut Vec<u8>, lsn: u64, op: &WalOp) {
    let mut body = Vec::with_capacity(64);
    put_u64(&mut body, lsn);
    op.encode(&mut body);
    put_u32(out, body.len() as u32);
    put_u32(out, crc32(&body));
    out.extend_from_slice(&body);
}

/// The outcome of scanning one log segment.
#[derive(Debug)]
pub struct DecodedLog {
    /// Every frame up to the first invalid one, in log order.
    pub frames: Vec<(u64, WalOp)>,
    /// Byte offset past the last valid frame (the truncation point).
    pub valid_len: usize,
    /// Bytes past `valid_len` — a torn tail or garbage.
    pub torn_bytes: usize,
}

/// Scan a segment's bytes into frames, stopping at the first frame that
/// fails the length, checksum or payload test (a crash mid-append leaves
/// exactly such a tail). Never errors: corruption just ends the scan.
pub fn decode_log(bytes: &[u8]) -> DecodedLog {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if !(9..=MAX_FRAME_LEN).contains(&len) || bytes.len() - pos - 8 < len {
            break;
        }
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let body = &bytes[pos + 8..pos + 8 + len];
        if crc32(body) != crc {
            break;
        }
        let lsn = u64::from_le_bytes(body[..8].try_into().unwrap());
        match WalOp::decode(&body[8..]) {
            Ok(op) => frames.push((lsn, op)),
            Err(_) => break,
        }
        pos += 8 + len;
    }
    DecodedLog {
        frames,
        valid_len: pos,
        torn_bytes: bytes.len() - pos,
    }
}

/// One maximal run of valid frames found by [`salvage_scan`].
#[derive(Debug)]
pub struct SalvageRun {
    /// Byte offset of the run's first frame within the segment.
    pub offset: usize,
    /// Bytes the run spans.
    pub len: usize,
    /// The decoded frames, in log order.
    pub frames: Vec<(u64, WalOp)>,
}

/// Forward-scan a whole segment, resynchronising past corrupt regions.
///
/// Where [`decode_log`] stops at the first invalid frame, this slides the
/// frame window a byte at a time until the length/CRC/payload checks pass
/// again, yielding every maximal run of valid frames with the corrupt
/// gaps between them implied by the offsets. The 32-bit CRC makes a false
/// resync on random corruption vanishingly unlikely (~2⁻³²). Cost is
/// linear in the *corrupt* region size — a clean segment is one
/// [`decode_log`] pass, exactly as before.
pub fn salvage_scan(bytes: &[u8]) -> Vec<SalvageRun> {
    let mut runs = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let d = decode_log(&bytes[pos..]);
        if d.frames.is_empty() {
            pos += 1;
            continue;
        }
        let torn = d.torn_bytes > 0;
        runs.push(SalvageRun {
            offset: pos,
            len: d.valid_len,
            frames: d.frames,
        });
        pos += d.valid_len;
        if !torn {
            break; // the run consumed everything to the end of the segment
        }
        pos += 1; // step past the known-bad offset before re-syncing
    }
    runs
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// Where the writer's bytes go. Implementations must make `sync` a
/// durability point: everything appended before a successful `sync`
/// survives a crash.
pub trait LogSink: Send + Sync {
    /// Append raw frame bytes to the current segment.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Make everything appended so far durable.
    fn sync(&mut self) -> std::io::Result<()>;
    /// Close the current segment and start a new one whose first frame
    /// will carry `next_lsn`.
    fn rotate(&mut self, next_lsn: u64) -> std::io::Result<()>;
    /// Drop segments that lie entirely at or below `horizon` (covered by
    /// a durable snapshot).
    fn prune(&mut self, horizon: u64) -> std::io::Result<()>;
    /// Durably persist a snapshot body with the given horizon.
    fn write_snapshot(&mut self, horizon: u64, body: &[u8]) -> std::io::Result<()>;
    /// The directory backing this sink, when file-based — the service
    /// layer uses it to write snapshots off the write lock.
    fn snapshot_dir(&self) -> Option<PathBuf> {
        None
    }
}

fn segment_path(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{first_lsn:020}.log"))
}

fn snapshot_path(dir: &Path, horizon: u64) -> PathBuf {
    dir.join(format!("snapshot-{horizon:020}.cqms"))
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn sync_dir(dir: &Path) -> std::io::Result<()> {
    // Directory fsync makes renames/creates/unlinks durable on POSIX.
    File::open(dir)?.sync_all()
}

/// List `(first_lsn, path)` of every segment in `dir`, ascending.
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(lsn) = name
            .to_str()
            .and_then(|n| parse_numbered(n, "wal-", ".log"))
        {
            out.push((lsn, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// List `(horizon, path)` of every snapshot in `dir`, ascending.
pub fn list_snapshots(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(h) = name
            .to_str()
            .and_then(|n| parse_numbered(n, "snapshot-", ".cqms"))
        {
            out.push((h, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Fixed-width CRC trailer appended to snapshot files:
/// `"snapshot-crc32 " + 8 hex digits + '\n'` — exactly 24 bytes, so the
/// reader can peel it off the end without ambiguity.
const SNAPSHOT_TRAILER_LEN: usize = 24;
const SNAPSHOT_TRAILER_TAG: &[u8] = b"snapshot-crc32 ";

/// Durably write `snapshot-<horizon>.cqms` (tmp file + fsync + rename +
/// directory fsync) and drop older snapshots. Shared by [`FileSink`] and
/// the service layer's off-lock snapshot path. The file ends in a CRC-32
/// trailer covering *everything* before it — the `wal-horizon` header
/// included, so a flipped horizon digit cannot silently skip replay —
/// which [`read_snapshot_file`] verifies on load.
pub fn write_snapshot_file(
    dir: &Path,
    horizon: u64,
    body: &[u8],
    fsync: bool,
) -> std::io::Result<()> {
    let tmp = dir.join("snapshot.tmp");
    {
        let mut content = Vec::with_capacity(body.len() + 32);
        writeln!(content, "wal-horizon {horizon}")?;
        content.extend_from_slice(body);
        let mut f = File::create(&tmp)?;
        f.write_all(&content)?;
        writeln!(f, "snapshot-crc32 {:08x}", crc32(&content))?;
        if fsync {
            f.sync_all()?;
        }
    }
    fs::rename(&tmp, snapshot_path(dir, horizon))?;
    if fsync {
        sync_dir(dir)?;
    }
    // Only the newest snapshot is load-bearing; older ones are garbage
    // the moment the rename lands.
    for (h, path) in list_snapshots(dir)? {
        if h < horizon {
            let _ = fs::remove_file(path);
        }
    }
    Ok(())
}

/// Parse a snapshot file into `(horizon, snapshot body)`, verifying the
/// CRC-32 trailer when present. Legacy trailer-less snapshots (written
/// before the trailer existed) still load — detection keys on the exact
/// fixed-width `snapshot-crc32 ` tail, which cannot appear at the end of
/// a valid body (bodies end in a newline-terminated record, never this
/// tag line).
pub fn read_snapshot_file(path: &Path) -> std::io::Result<(u64, Vec<u8>)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() >= SNAPSHOT_TRAILER_LEN
        && bytes.ends_with(b"\n")
        && bytes[bytes.len() - SNAPSHOT_TRAILER_LEN..].starts_with(SNAPSHOT_TRAILER_TAG)
    {
        let hex = &bytes[bytes.len() - 9..bytes.len() - 1];
        let want = std::str::from_utf8(hex)
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| std::io::Error::other("bad snapshot-crc32 trailer"))?;
        bytes.truncate(bytes.len() - SNAPSHOT_TRAILER_LEN);
        if crc32(&bytes) != want {
            return Err(std::io::Error::other("snapshot checksum mismatch"));
        }
    }
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| std::io::Error::other("snapshot missing horizon header"))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .ok()
        .and_then(|h| h.strip_prefix("wal-horizon "))
        .and_then(|h| h.trim().parse::<u64>().ok())
        .ok_or_else(|| std::io::Error::other("bad wal-horizon header"))?;
    let body = bytes.split_off(nl + 1);
    Ok((header, body))
}

/// A file-backed sink: numbered segment files in one directory.
pub struct FileSink {
    dir: PathBuf,
    file: File,
    fsync: bool,
}

impl FileSink {
    /// Start a fresh segment whose first frame will carry `first_lsn`.
    pub fn create(dir: &Path, first_lsn: u64, fsync: bool) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(dir, first_lsn))?;
        if fsync {
            sync_dir(dir)?;
        }
        Ok(FileSink {
            dir: dir.to_path_buf(),
            file,
            fsync,
        })
    }

    /// Resume appending to an existing segment file.
    pub fn resume(dir: &Path, path: &Path, fsync: bool) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(FileSink {
            dir: dir.to_path_buf(),
            file,
            fsync,
        })
    }
}

impl LogSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    fn rotate(&mut self, next_lsn: u64) -> std::io::Result<()> {
        self.sync()?;
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, next_lsn))?;
        if self.fsync {
            sync_dir(&self.dir)?;
        }
        Ok(())
    }

    fn prune(&mut self, horizon: u64) -> std::io::Result<()> {
        let segments = list_segments(&self.dir)?;
        // Segment i spans [first[i], first[i+1]); it is fully covered by
        // the snapshot iff the next segment starts at or below horizon+1.
        // The newest segment never has a successor and is never pruned.
        let mut removed = false;
        for pair in segments.windows(2) {
            if pair[1].0 <= horizon + 1 {
                let _ = fs::remove_file(&pair[0].1);
                removed = true;
            }
        }
        if removed && self.fsync {
            sync_dir(&self.dir)?;
        }
        Ok(())
    }

    fn write_snapshot(&mut self, horizon: u64, body: &[u8]) -> std::io::Result<()> {
        write_snapshot_file(&self.dir, horizon, body, self.fsync)
    }

    fn snapshot_dir(&self) -> Option<PathBuf> {
        Some(self.dir.clone())
    }
}

/// One in-memory segment of a [`MemSink`].
#[derive(Debug, Default, Clone)]
pub struct MemSegment {
    /// LSN of the segment's first frame.
    pub first_lsn: u64,
    /// Everything appended, durable or not.
    pub bytes: Vec<u8>,
    /// Bytes made durable by the last `sync` — a simulated crash keeps
    /// exactly this prefix.
    pub synced_len: usize,
}

/// A `(horizon, body)` snapshot alongside `(first_lsn, bytes)` segments —
/// what [`MemLog::durable_state`] hands back.
pub type DurableState = (Option<(u64, Vec<u8>)>, Vec<(u64, Vec<u8>)>);

/// The shared state behind a [`MemSink`]: segments plus snapshots.
#[derive(Debug, Default, Clone)]
pub struct MemLog {
    /// Segments in rotation order.
    pub segments: Vec<MemSegment>,
    /// `(horizon, body)` snapshots (treated as durable at write time,
    /// mirroring the file sink's fsync-before-rename protocol).
    pub snapshots: Vec<(u64, Vec<u8>)>,
}

impl MemLog {
    /// What a crash right now would leave behind: the newest snapshot
    /// plus every segment truncated to its synced length.
    pub fn durable_state(&self) -> DurableState {
        let snapshot = self.snapshots.iter().max_by_key(|(h, _)| *h).cloned();
        let segments = self
            .segments
            .iter()
            .map(|s| (s.first_lsn, s.bytes[..s.synced_len].to_vec()))
            .collect();
        (snapshot, segments)
    }

    /// Simulate crash + restart: recover a storage from the durable state.
    pub fn recover(&self) -> Result<(QueryStorage, RecoveryReport), CqmsError> {
        let (snapshot, segments) = self.durable_state();
        let (storage, report, _) = recover(
            snapshot.as_ref().map(|(h, b)| (*h, b.as_slice())),
            &segments,
        )?;
        Ok((storage, report))
    }
}

/// An in-memory sink for tests: shares its [`MemLog`] with the handle
/// returned by [`MemSink::new`], so a test can inspect durable state and
/// simulate crashes while the writer keeps logging.
pub struct MemSink(Arc<Mutex<MemLog>>);

impl MemSink {
    /// A sink plus the shared handle to its log state.
    pub fn new() -> (Self, Arc<Mutex<MemLog>>) {
        let log = Arc::new(Mutex::new(MemLog {
            segments: vec![MemSegment {
                first_lsn: 1,
                ..MemSegment::default()
            }],
            snapshots: Vec::new(),
        }));
        (MemSink(log.clone()), log)
    }
}

impl LogSink for MemSink {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut log = self.0.lock();
        log.segments
            .last_mut()
            .expect("MemSink always has a segment")
            .bytes
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        let mut log = self.0.lock();
        let seg = log.segments.last_mut().expect("segment");
        seg.synced_len = seg.bytes.len();
        Ok(())
    }

    fn rotate(&mut self, next_lsn: u64) -> std::io::Result<()> {
        self.sync()?;
        self.0.lock().segments.push(MemSegment {
            first_lsn: next_lsn,
            ..MemSegment::default()
        });
        Ok(())
    }

    fn prune(&mut self, horizon: u64) -> std::io::Result<()> {
        let mut log = self.0.lock();
        let firsts: Vec<u64> = log.segments.iter().map(|s| s.first_lsn).collect();
        let mut i = 0;
        log.segments.retain(|_| {
            let covered = firsts.get(i + 1).is_some_and(|&next| next <= horizon + 1);
            i += 1;
            !covered
        });
        Ok(())
    }

    fn write_snapshot(&mut self, horizon: u64, body: &[u8]) -> std::io::Result<()> {
        self.0.lock().snapshots.push((horizon, body.to_vec()));
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// The append side of the log: assigns LSNs, buffers encoded frames, and
/// flushes them to the sink at batch boundaries.
///
/// `log` is cheap (an in-memory encode); durability happens at
/// [`WalWriter::flush`], which the service layer calls once per write
/// operation / ingest batch *before* acknowledging the caller.
pub struct WalWriter {
    sink: Box<dyn LogSink>,
    buf: Vec<u8>,
    next_lsn: u64,
    ops_since_snapshot: u64,
}

impl WalWriter {
    /// Wrap a sink; the first logged op gets `next_lsn`.
    pub fn new(sink: Box<dyn LogSink>, next_lsn: u64) -> Self {
        WalWriter {
            sink,
            buf: Vec::new(),
            next_lsn,
            ops_since_snapshot: 0,
        }
    }

    /// Encode `op` into the buffer and return its LSN.
    pub fn log(&mut self, op: &WalOp) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.ops_since_snapshot += 1;
        encode_frame(&mut self.buf, lsn, op);
        lsn
    }

    /// Append all buffered frames and make them durable.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.sink.append(&self.buf)?;
            self.buf.clear();
        }
        self.sink.sync()
    }

    /// The LSN of the most recently logged op (0 if none yet).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn.saturating_sub(1)
    }

    /// Ops logged since the last snapshot mark — the miner epoch's
    /// snapshot trigger.
    pub fn ops_since_snapshot(&self) -> u64 {
        self.ops_since_snapshot
    }

    /// A snapshot at `horizon` is durable: flush, rotate to a fresh
    /// segment, and prune segments the snapshot covers.
    pub fn mark_snapshot(&mut self, horizon: u64) -> std::io::Result<()> {
        self.flush()?;
        self.sink.rotate(self.next_lsn)?;
        self.sink.prune(horizon)?;
        self.ops_since_snapshot = 0;
        Ok(())
    }

    /// Write a snapshot through the sink (the inline path for synchronous
    /// callers), then mark it.
    pub fn write_snapshot(&mut self, horizon: u64, body: &[u8]) -> std::io::Result<()> {
        // Flush first so the log is always a superset of durable state —
        // a crash between the two leaves the snapshot plus an overlapping
        // log, which idempotent replay handles.
        self.flush()?;
        self.sink.write_snapshot(horizon, body)?;
        self.mark_snapshot(horizon)
    }

    /// The directory of a file-backed sink (None for in-memory sinks).
    pub fn snapshot_dir(&self) -> Option<PathBuf> {
        self.sink.snapshot_dir()
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// What recovery found and did. Render with `{}` for the operator log
/// line; the full struct is available via `Cqms::recovery`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Horizon of the snapshot recovery started from (0 = no snapshot).
    pub snapshot_lsn: u64,
    /// Records restored from the snapshot itself.
    pub snapshot_records: usize,
    /// Log segments scanned.
    pub segments_scanned: usize,
    /// Frames applied on top of the snapshot.
    pub frames_replayed: usize,
    /// Frames skipped as already covered (at or below the horizon, or an
    /// insert whose id already exists).
    pub frames_skipped: usize,
    /// Frames whose replay failed (0 on any healthy log).
    pub frames_failed: usize,
    /// **Benign** loss only: bytes truncated from the physical tail of
    /// the log — a frame cut short by a crash mid-write, or garbage past
    /// the last valid frame anywhere. Nothing acknowledged-and-synced
    /// lives here.
    pub torn_bytes_truncated: usize,
    /// **Real** loss: acknowledged frames that decoded past a mid-log
    /// corruption but could not be replayed because LSN continuity was
    /// broken across the corrupt region.
    pub frames_lost: usize,
    /// Bytes set aside rather than replayed: mid-log corrupt regions,
    /// the bytes of lost frames, and corrupt snapshot files — all
    /// preserved under `quarantine/` by [`open_dir`] for inspection.
    pub bytes_quarantined: usize,
    /// Highest LSN seen (snapshot horizon included); the writer resumes
    /// at `max_lsn + 1`.
    pub max_lsn: u64,
}

impl RecoveryReport {
    /// Did recovery drop anything at all — benign tail or real loss?
    /// `false` means the recovered state is byte-complete with respect to
    /// every acknowledged-and-synced operation.
    pub fn lossy(&self) -> bool {
        self.torn_bytes_truncated > 0
            || self.frames_lost > 0
            || self.bytes_quarantined > 0
            || self.frames_failed > 0
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovered from snapshot@{} ({} records) + {} segment(s): \
             {} replayed, {} skipped, {} failed, {} torn byte(s) truncated, \
             {} frame(s) lost, {} byte(s) quarantined; next lsn {}",
            self.snapshot_lsn,
            self.snapshot_records,
            self.segments_scanned,
            self.frames_replayed,
            self.frames_skipped,
            self.frames_failed,
            self.torn_bytes_truncated,
            self.frames_lost,
            self.bytes_quarantined,
            self.max_lsn + 1,
        )
    }
}

/// Apply one logged op to a storage. The storage must have **no WAL
/// attached** (replay must not re-log itself). Returns whether the op
/// changed state (`false` = skipped as already applied).
pub fn apply_op(storage: &mut QueryStorage, op: &WalOp) -> Result<bool, CqmsError> {
    match op {
        WalOp::Insert(f) => {
            let len = storage.len() as u64;
            if f.id.0 < len {
                return Ok(false); // already present (snapshot overlap)
            }
            if f.id.0 > len {
                return Err(CqmsError::Wal(format!(
                    "insert gap: log has id {} but store has {len} records",
                    f.id
                )));
            }
            let statement = sqlparse::parse(&f.raw_sql).ok();
            let (canonical_sql, sfp, tfp, feats) = match &statement {
                Some(stmt) => (
                    sqlparse::to_sql(&sqlparse::canonicalize(stmt)),
                    sqlparse::structure_fingerprint(stmt),
                    sqlparse::template_fingerprint(stmt),
                    features::extract(stmt, None),
                ),
                None => (f.raw_sql.clone(), 0, 0, SyntacticFeatures::default()),
            };
            storage.insert(QueryRecord {
                id: f.id,
                user: f.user,
                ts: f.ts,
                raw_sql: f.raw_sql.clone(),
                statement,
                canonical_sql,
                structure_fp: sfp,
                template_fp: tfp,
                features: feats,
                runtime: RuntimeFeatures {
                    elapsed_us: f.elapsed_us,
                    cardinality: f.cardinality,
                    success: f.success,
                    ..RuntimeFeatures::default()
                },
                summary: OutputSummary::None,
                session: f.session,
                visibility: f.visibility,
                annotations: Vec::new(),
                validity: f.validity.clone(),
                quality: f.quality,
            });
            Ok(true)
        }
        WalOp::Tombstone { id } => {
            storage.delete(*id)?;
            Ok(true)
        }
        WalOp::SetValidity { id, validity } => {
            storage.set_validity(*id, validity.clone())?;
            Ok(true)
        }
        WalOp::SetVisibility { id, visibility } => {
            storage.set_visibility(*id, *visibility)?;
            Ok(true)
        }
        WalOp::Edge { from, to, kind } => {
            let edits = match (
                storage.get(*from).ok().and_then(|r| r.statement.clone()),
                storage.get(*to).ok().and_then(|r| r.statement.clone()),
            ) {
                (Some(a), Some(b)) => sqlparse::diff_statements(&a, &b),
                _ => Vec::new(),
            };
            storage.add_edge(SessionEdge {
                from: *from,
                to: *to,
                kind: *kind,
                edits,
            });
            Ok(true)
        }
        WalOp::Annotate {
            id,
            author,
            at,
            text,
            fragment,
        } => {
            storage.annotate(
                *id,
                Annotation {
                    author: *author,
                    at: *at,
                    text: text.clone(),
                    fragment: fragment.clone(),
                },
            )?;
            Ok(true)
        }
        WalOp::Reindex { id, raw_sql } => {
            {
                let r = storage.get(*id)?;
                if r.raw_sql != *raw_sql {
                    let statement = sqlparse::parse(raw_sql).ok();
                    let (canonical_sql, sfp, tfp, feats) = match &statement {
                        Some(stmt) => (
                            sqlparse::to_sql(&sqlparse::canonicalize(stmt)),
                            sqlparse::structure_fingerprint(stmt),
                            sqlparse::template_fingerprint(stmt),
                            features::extract(stmt, None),
                        ),
                        None => (raw_sql.clone(), 0, 0, SyntacticFeatures::default()),
                    };
                    let old_tfp = {
                        let r = storage.get_mut(*id)?;
                        let old = r.template_fp;
                        r.raw_sql = raw_sql.clone();
                        r.statement = statement;
                        r.canonical_sql = canonical_sql;
                        r.structure_fp = sfp;
                        r.template_fp = tfp;
                        r.features = feats;
                        old
                    };
                    storage.retemplate(old_tfp, tfp);
                }
            }
            storage.reindex(*id)?;
            Ok(true)
        }
    }
}

/// What [`recover`] asks the caller to do with one scanned segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentDisposition {
    /// Every byte decoded cleanly (or the file is empty) — leave it alone.
    Keep,
    /// A benign torn tail: truncate the file to this many bytes.
    Truncate(usize),
    /// A nonempty trailing segment with no valid frame at all (garbage
    /// past the last durable frame anywhere) — remove it.
    Remove,
    /// Mid-log corruption or unsalvageable frames: preserve the whole
    /// file under `quarantine/` for inspection. The caller must re-anchor
    /// durable state with a snapshot before serving, because replayable
    /// frames inside the file leave the directory with it.
    Quarantine,
}

/// The physical cleanup [`recover`] asks of its caller, one entry per
/// scanned segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SalvagePlan {
    /// Parallel to the `segments` passed to [`recover`].
    pub dispositions: Vec<SegmentDisposition>,
    /// Human-readable diagnosis per segment (empty string when healthy);
    /// [`open_dir`] copies quarantined segments' entries into the
    /// quarantine manifest.
    pub reasons: Vec<String>,
}

impl SalvagePlan {
    /// Does any segment need quarantining? When true the caller must
    /// write a fresh snapshot at the recovered `max_lsn` before serving.
    pub fn needs_quarantine(&self) -> bool {
        self.dispositions.contains(&SegmentDisposition::Quarantine)
    }
}

/// Rebuild a storage from a snapshot plus ordered log segments.
///
/// Frames with `lsn <= horizon` are skipped (idempotent overlap). The
/// scan is **salvage-aware**: a corrupt region does not end recovery.
/// Valid frames past it are replayed whenever LSN continuity allows —
/// a frame at or below the last LSN already seen is a duplicate
/// (snapshot or replay overlap) and skips; a frame at exactly
/// `last_seen + 1` continues the log. Only when the first frame after a
/// corrupt region *jumps* the LSN sequence is acknowledged data actually
/// gone, and then it is reported as [`RecoveryReport::frames_lost`] /
/// [`RecoveryReport::bytes_quarantined`] rather than silently dropped.
/// Corruption with no valid frame after it anywhere is the classic torn
/// tail: benign, counted in `torn_bytes_truncated`, truncated.
///
/// Returns the storage (no WAL attached), the report, and the physical
/// cleanup plan the caller should execute.
pub fn recover(
    snapshot: Option<(u64, &[u8])>,
    segments: &[(u64, Vec<u8>)],
) -> Result<(QueryStorage, RecoveryReport, SalvagePlan), CqmsError> {
    let (mut storage, horizon) = match snapshot {
        Some((h, body)) => (QueryStorage::load(body)?, h),
        None => (QueryStorage::new(), 0),
    };
    let mut report = RecoveryReport {
        snapshot_lsn: horizon,
        snapshot_records: storage.len(),
        max_lsn: horizon,
        ..RecoveryReport::default()
    };

    // Pass 1: scan every segment, resynchronising past corrupt regions.
    let scans: Vec<Vec<SalvageRun>> = segments.iter().map(|(_, b)| salvage_scan(b)).collect();
    report.segments_scanned = segments.len();
    // Corruption after the last valid frame anywhere is a benign torn
    // tail; corruption before it is mid-log (frames follow it).
    let last_with_frames = scans.iter().rposition(|runs| !runs.is_empty());

    let mut plan = SalvagePlan {
        dispositions: vec![SegmentDisposition::Keep; segments.len()],
        reasons: vec![String::new(); segments.len()],
    };
    // Has a corrupt region with valid frames after it been crossed?
    // Until then replay behaves exactly like the pre-salvage code.
    let mut gap_seen = false;
    // LSN continuity broke across a corrupt region: every later frame is
    // acknowledged data we cannot safely replay.
    let mut lost = false;
    // Highest LSN applied or legitimately skipped (duplicates included).
    let mut last_seen = horizon;

    for (i, ((_first_lsn, bytes), runs)) in segments.iter().zip(&scans).enumerate() {
        let mut cursor = 0usize; // end of the previous run in this segment
        let mut gap_bytes = 0usize;
        let mut lost_frames = 0usize;
        for run in runs {
            if run.offset > cursor {
                // A corrupt region with this run's frames right after it:
                // mid-log by construction.
                let gap = run.offset - cursor;
                report.bytes_quarantined += gap;
                gap_bytes += gap;
                gap_seen = true;
            }
            cursor = run.offset + run.len;
            // Frames within one physically contiguous run carry
            // consecutive LSNs (the writer appends them in order), so
            // continuity is decided by the run's first frame.
            if !lost && gap_seen {
                if let Some((first, _)) = run.frames.first() {
                    if *first > last_seen + 1 {
                        lost = true;
                    }
                }
            }
            if lost {
                report.frames_lost += run.frames.len();
                report.bytes_quarantined += run.len;
                lost_frames += run.frames.len();
                continue;
            }
            for (lsn, op) in &run.frames {
                report.max_lsn = report.max_lsn.max(*lsn);
                last_seen = last_seen.max(*lsn);
                if *lsn <= horizon {
                    report.frames_skipped += 1;
                    continue;
                }
                match apply_op(&mut storage, op) {
                    Ok(true) => report.frames_replayed += 1,
                    Ok(false) => report.frames_skipped += 1,
                    Err(_) => report.frames_failed += 1,
                }
            }
        }
        // Trailing bytes past the segment's last run.
        let trailing = bytes.len() - cursor;
        let benign_tail = match last_with_frames {
            // No frames after this point anywhere: classic torn tail.
            Some(last) => i >= last,
            None => true,
        };
        if trailing > 0 {
            if benign_tail {
                report.torn_bytes_truncated += trailing;
            } else {
                report.bytes_quarantined += trailing;
                gap_bytes += trailing;
                gap_seen = true;
            }
        }
        // Disposition: any mid-log damage or lost frames preserves the
        // whole file in quarantine; a benign tail truncates (or removes
        // an all-garbage trailing file); clean segments stay put.
        plan.dispositions[i] = if gap_bytes > 0 || lost_frames > 0 {
            plan.reasons[i] = format!(
                "mid-log corruption: {gap_bytes} corrupt byte(s), {lost_frames} frame(s) lost"
            );
            SegmentDisposition::Quarantine
        } else if trailing > 0 && benign_tail {
            if runs.is_empty() {
                SegmentDisposition::Remove
            } else {
                SegmentDisposition::Truncate(cursor)
            }
        } else {
            SegmentDisposition::Keep
        };
    }
    Ok((storage, report, plan))
}

/// A recovered store with its WAL re-attached and ready to append.
pub struct Recovered {
    /// The rebuilt storage, logging to the directory it was opened from.
    pub storage: QueryStorage,
    /// What recovery found and did.
    pub report: RecoveryReport,
}

/// Move `path` into `dir/quarantine/` (collision-safe) and append a line
/// to `quarantine/MANIFEST.txt` describing why. Returns the file's size
/// in bytes for loss accounting. Fires the `wal.quarantine` failpoint.
fn quarantine_file(dir: &Path, path: &Path, reason: &str, fsync: bool) -> std::io::Result<u64> {
    crate::faults::global_plan().hit(crate::faults::WAL_QUARANTINE)?;
    let qdir = dir.join("quarantine");
    fs::create_dir_all(&qdir)?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("unnamed")
        .to_string();
    let bytes = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let mut target = qdir.join(&name);
    let mut suffix = 0u32;
    while target.exists() {
        suffix += 1;
        target = qdir.join(format!("{name}.{suffix}"));
    }
    fs::rename(path, &target)?;
    let target_name = target
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("unnamed")
        .to_string();
    let mut manifest = OpenOptions::new()
        .create(true)
        .append(true)
        .open(qdir.join("MANIFEST.txt"))?;
    writeln!(
        manifest,
        "file={name} bytes={bytes} quarantined-as={target_name} reason={reason}"
    )?;
    if fsync {
        manifest.sync_all()?;
        sync_dir(&qdir)?;
        sync_dir(dir)?;
    }
    Ok(bytes)
}

/// Open (or create) a durable store in `dir`: load the newest readable
/// snapshot, replay the log past its horizon salvaging past any mid-log
/// corruption, then execute the physical cleanup plan — truncate benign
/// torn tails in place, or (when corruption cost data) preserve the
/// damaged files under `quarantine/` after re-anchoring survivors in a
/// fresh snapshot — and attach a [`FileSink`]-backed writer resuming at
/// `max_lsn + 1`. Corrupt snapshots met along the way are quarantined
/// too, falling back to older snapshots and finally to log-only replay.
pub fn open_dir(dir: &Path, fsync: bool) -> Result<Recovered, CqmsError> {
    fs::create_dir_all(dir).map_err(wal_io)?;
    let segment_files = list_segments(dir).map_err(wal_io)?;
    let mut segments: Vec<(u64, Vec<u8>)> = Vec::with_capacity(segment_files.len());
    for (first_lsn, path) in &segment_files {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(wal_io)?;
        segments.push((*first_lsn, bytes));
    }

    // Newest snapshot first; fall back to older ones (then to log-only)
    // if a snapshot fails its checksum or fails to load — a half-written
    // tmp never gets the final name, but disk corruption should degrade,
    // not brick the open. Rejected snapshots move to quarantine/ so the
    // fallback is visible and the next open doesn't retry them.
    let mut snapshot_files = list_snapshots(dir).map_err(wal_io)?;
    snapshot_files.reverse();
    let mut outcome = None;
    let mut snapshot_bytes_quarantined = 0usize;
    for (horizon, path) in &snapshot_files {
        let reason = match read_snapshot_file(path) {
            Ok((file_h, body)) => {
                let h = if file_h != 0 { file_h } else { *horizon };
                match recover(Some((h, &body)), &segments) {
                    Ok(r) => {
                        outcome = Some(r);
                        break;
                    }
                    Err(e) => format!("snapshot body failed to load: {e}"),
                }
            }
            Err(e) => format!("unreadable snapshot: {e}"),
        };
        snapshot_bytes_quarantined +=
            quarantine_file(dir, path, &reason, fsync).map_err(wal_io)? as usize;
    }
    let (storage, mut report, plan) = match outcome {
        Some(r) => r,
        None => recover(None, &segments)?,
    };
    report.bytes_quarantined += snapshot_bytes_quarantined;

    let next_lsn = report.max_lsn + 1;
    let sink = if plan.needs_quarantine() {
        // Crash-safe ordering: re-anchor everything replay recovered in
        // a fresh snapshot FIRST, so the quarantine moves and deletions
        // below never hold the only copy of a replayable frame. A crash
        // between any two steps re-runs this path idempotently.
        let mut body = Vec::new();
        storage.snapshot(&mut body)?;
        write_snapshot_file(dir, report.max_lsn, &body, fsync).map_err(wal_io)?;
        for (i, (_, path)) in segment_files.iter().enumerate() {
            if plan.dispositions[i] == SegmentDisposition::Quarantine {
                quarantine_file(dir, path, &plan.reasons[i], fsync).map_err(wal_io)?;
            } else {
                // Fully covered by the snapshot we just wrote.
                fs::remove_file(path).map_err(wal_io)?;
            }
        }
        if fsync {
            sync_dir(dir).map_err(wal_io)?;
        }
        FileSink::create(dir, next_lsn, fsync).map_err(wal_io)?
    } else {
        // Benign path: truncate torn tails in place, drop all-garbage
        // trailing files, resume appending to the last surviving segment.
        let mut surviving_last: Option<&PathBuf> = None;
        let mut touched = false;
        for (i, (_, path)) in segment_files.iter().enumerate() {
            match plan.dispositions[i] {
                SegmentDisposition::Keep => surviving_last = Some(path),
                SegmentDisposition::Truncate(valid_len) => {
                    OpenOptions::new()
                        .write(true)
                        .open(path)
                        .and_then(|f| f.set_len(valid_len as u64))
                        .map_err(wal_io)?;
                    surviving_last = Some(path);
                    touched = true;
                }
                SegmentDisposition::Remove => {
                    fs::remove_file(path).map_err(wal_io)?;
                    touched = true;
                }
                SegmentDisposition::Quarantine => unreachable!("handled above"),
            }
        }
        if fsync && touched {
            sync_dir(dir).map_err(wal_io)?;
        }
        match surviving_last {
            Some(path) => FileSink::resume(dir, path, fsync).map_err(wal_io)?,
            None => FileSink::create(dir, next_lsn, fsync).map_err(wal_io)?,
        }
    };
    let mut storage = storage;
    storage.attach_wal(WalWriter::new(Box::new(sink), next_lsn));
    Ok(Recovered { storage, report })
}

pub(crate) fn wal_io(e: std::io::Error) -> CqmsError {
    CqmsError::Wal(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;
    use crate::storage::make_record;

    fn record(id: u64, sql: &str, session: u64) -> QueryRecord {
        let stmt = sqlparse::parse(sql).ok();
        let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
        make_record(
            QueryId(id),
            UserId(1),
            id * 10,
            sql,
            stmt,
            feats,
            RuntimeFeatures {
                elapsed_us: 500,
                cardinality: 3,
                success: true,
                ..RuntimeFeatures::default()
            },
            OutputSummary::None,
            SessionId(session),
            Visibility::Public,
        )
    }

    fn all_ops() -> Vec<WalOp> {
        vec![
            WalOp::Insert(Box::new(InsertFrame::of(&record(
                0,
                "SELECT * FROM WaterTemp WHERE temp < 18",
                0,
            )))),
            WalOp::Tombstone { id: QueryId(3) },
            WalOp::SetValidity {
                id: QueryId(1),
                validity: Validity::Flagged {
                    reason: "schema\tdrift".into(),
                    at: 99,
                },
            },
            WalOp::SetVisibility {
                id: QueryId(2),
                visibility: Visibility::Group(GroupId(7)),
            },
            WalOp::Edge {
                from: QueryId(0),
                to: QueryId(1),
                kind: EdgeKind::Investigation,
            },
            WalOp::Annotate {
                id: QueryId(0),
                author: UserId(4),
                at: 123,
                text: "unicode ✓ and\nnewline".into(),
                fragment: Some("temp < 18".into()),
            },
            WalOp::Reindex {
                id: QueryId(0),
                raw_sql: "SELECT * FROM LakeTemp WHERE temp < 18".into(),
            },
        ]
    }

    #[test]
    fn frames_roundtrip_every_op() {
        let mut buf = Vec::new();
        for (i, op) in all_ops().iter().enumerate() {
            encode_frame(&mut buf, i as u64 + 1, op);
        }
        let decoded = decode_log(&buf);
        assert_eq!(decoded.torn_bytes, 0);
        assert_eq!(decoded.valid_len, buf.len());
        assert_eq!(decoded.frames.len(), all_ops().len());
        for ((lsn, op), (i, expected)) in decoded.frames.iter().zip(all_ops().iter().enumerate()) {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(op, expected);
        }
    }

    #[test]
    fn torn_tail_is_detected_not_fatal() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 1, &WalOp::Tombstone { id: QueryId(0) });
        let good_len = buf.len();
        // A frame cut off mid-body.
        encode_frame(&mut buf, 2, &WalOp::Tombstone { id: QueryId(1) });
        buf.truncate(buf.len() - 3);
        let decoded = decode_log(&buf);
        assert_eq!(decoded.frames.len(), 1);
        assert_eq!(decoded.valid_len, good_len);
        assert!(decoded.torn_bytes > 0);
        // Pure garbage tail.
        let mut buf2 = buf[..good_len].to_vec();
        buf2.extend_from_slice(b"\xDE\xAD\xBE\xEF garbage bytes here");
        let decoded = decode_log(&buf2);
        assert_eq!(decoded.frames.len(), 1);
        assert_eq!(decoded.valid_len, good_len);
    }

    #[test]
    fn corrupted_crc_ends_the_scan() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 1, &WalOp::Tombstone { id: QueryId(0) });
        encode_frame(&mut buf, 2, &WalOp::Tombstone { id: QueryId(1) });
        // Flip one payload bit of the first frame: both frames after the
        // corruption point are distrusted.
        let flip = 8 + 8; // into the first frame's body, past the lsn
        buf[flip] ^= 0x40;
        let decoded = decode_log(&buf);
        assert_eq!(decoded.frames.len(), 0);
        assert_eq!(decoded.valid_len, 0);
        assert_eq!(decoded.torn_bytes, buf.len());
    }

    #[test]
    fn mem_sink_crash_discards_unsynced_tail() {
        let (sink, log) = MemSink::new();
        let mut w = WalWriter::new(Box::new(sink), 1);
        let mut storage = QueryStorage::new();
        storage.attach_wal(w_take(&mut w));

        storage.insert(record(0, "SELECT * FROM WaterTemp WHERE temp < 18", 0));
        storage.insert(record(1, "SELECT * FROM WaterTemp WHERE temp < 20", 0));
        storage.wal_flush().unwrap(); // durability point
        storage.insert(record(2, "SELECT * FROM Lakes", 1)); // never flushed

        let (recovered, report) = log.lock().recover().unwrap();
        assert_eq!(recovered.len(), 2, "unsynced insert lost, synced kept");
        assert_eq!(report.frames_replayed, 2);
        assert_eq!(report.frames_failed, 0);
        assert_eq!(
            recovered.template_histogram(),
            {
                let mut reference = QueryStorage::new();
                reference.insert(record(0, "SELECT * FROM WaterTemp WHERE temp < 18", 0));
                reference.insert(record(1, "SELECT * FROM WaterTemp WHERE temp < 20", 0));
                reference.template_histogram()
            },
            "replayed histogram matches the acknowledged prefix"
        );
    }

    // Helper: move a writer into the storage (attach_wal takes ownership).
    fn w_take(w: &mut WalWriter) -> WalWriter {
        std::mem::replace(w, WalWriter::new(Box::new(NullSink), 1))
    }

    struct NullSink;
    impl LogSink for NullSink {
        fn append(&mut self, _: &[u8]) -> std::io::Result<()> {
            Ok(())
        }
        fn sync(&mut self) -> std::io::Result<()> {
            Ok(())
        }
        fn rotate(&mut self, _: u64) -> std::io::Result<()> {
            Ok(())
        }
        fn prune(&mut self, _: u64) -> std::io::Result<()> {
            Ok(())
        }
        fn write_snapshot(&mut self, _: u64, _: &[u8]) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn snapshot_horizon_makes_replay_idempotent() {
        let (sink, log) = MemSink::new();
        let mut storage = QueryStorage::new();
        storage.attach_wal(WalWriter::new(Box::new(sink), 1));

        storage.insert(record(0, "SELECT * FROM WaterTemp WHERE temp < 18", 0));
        storage.insert(record(1, "SELECT * FROM Lakes", 0));
        storage.delete(QueryId(1)).unwrap();
        // Snapshot WITHOUT rotating/pruning first: the log still overlaps.
        let mut body = Vec::new();
        storage.snapshot(&mut body).unwrap();
        let horizon = storage.wal_last_lsn().unwrap();
        storage.wal_write_snapshot(horizon, &body).unwrap();
        // More ops past the horizon.
        storage.insert(record(2, "SELECT city FROM CityLocations", 1));
        storage.wal_flush().unwrap();

        let (recovered, report) = log.lock().recover().unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered.live_count(), 2);
        assert_eq!(report.snapshot_lsn, horizon);
        assert_eq!(report.frames_failed, 0);
        assert_eq!(report.frames_replayed, 1, "only the post-horizon insert");
        assert_eq!(recovered.template_histogram(), storage.template_histogram());
    }

    #[test]
    fn mark_snapshot_rotates_and_prunes() {
        let (sink, log) = MemSink::new();
        let mut storage = QueryStorage::new();
        storage.attach_wal(WalWriter::new(Box::new(sink), 1));
        storage.insert(record(0, "SELECT * FROM Lakes", 0));
        storage.insert(record(1, "SELECT * FROM WaterTemp", 0));
        let mut body = Vec::new();
        storage.snapshot(&mut body).unwrap();
        let horizon = storage.wal_last_lsn().unwrap();
        storage.wal_write_snapshot(horizon, &body).unwrap();
        {
            let l = log.lock();
            // Rotation happened; the fully-covered first segment is not
            // yet pruned (its successor starts at horizon+1, so it IS
            // covered — prune removes it).
            assert_eq!(l.segments.len(), 1, "covered segment pruned");
            assert_eq!(l.segments[0].first_lsn, horizon + 1);
            assert_eq!(l.snapshots.len(), 1);
        }
        // Post-snapshot ops land in the fresh segment and replay on top.
        storage.insert(record(2, "SELECT city FROM CityLocations", 1));
        storage.wal_flush().unwrap();
        let (recovered, report) = log.lock().recover().unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(report.snapshot_records, 2);
        assert_eq!(report.frames_replayed, 1);
    }

    #[test]
    fn replay_covers_maintenance_style_mutations() {
        let (sink, log) = MemSink::new();
        let mut storage = QueryStorage::new();
        storage.attach_wal(WalWriter::new(Box::new(sink), 1));
        storage.insert(record(0, "SELECT temp FROM WaterTemp WHERE temp < 18", 0));
        storage.insert(record(1, "SELECT * FROM Lakes", 0));
        // Simulate the repair path: rewrite sql in place, retemplate,
        // set_validity(Repaired), reindex — as maintenance.rs does.
        let (old_tfp, new_tfp) = {
            let new_sql = "SELECT temperature FROM WaterTemp WHERE temperature < 18";
            let stmt = sqlparse::parse(new_sql).unwrap();
            let r = storage.get_mut(QueryId(0)).unwrap();
            let old = r.template_fp;
            r.raw_sql = new_sql.into();
            r.canonical_sql = sqlparse::to_sql(&sqlparse::canonicalize(&stmt));
            r.structure_fp = sqlparse::structure_fingerprint(&stmt);
            r.template_fp = sqlparse::template_fingerprint(&stmt);
            r.features = extract(&stmt, None);
            r.statement = Some(stmt);
            (old, r.template_fp)
        };
        storage.retemplate(old_tfp, new_tfp);
        storage
            .set_validity(
                QueryId(0),
                Validity::Repaired {
                    original_sql: "SELECT temp FROM WaterTemp WHERE temp < 18".into(),
                    at: 42,
                },
            )
            .unwrap();
        storage.reindex(QueryId(0)).unwrap();
        // Plus an annotation, an edge and a visibility change.
        storage
            .annotate(
                QueryId(1),
                Annotation {
                    author: UserId(2),
                    at: 50,
                    text: "lakes overview".into(),
                    fragment: None,
                },
            )
            .unwrap();
        storage.add_edge(SessionEdge {
            from: QueryId(0),
            to: QueryId(1),
            kind: EdgeKind::Evolution,
            edits: Vec::new(),
        });
        storage
            .set_visibility(QueryId(1), Visibility::Private)
            .unwrap();
        storage.wal_flush().unwrap();

        let (recovered, report) = log.lock().recover().unwrap();
        assert_eq!(report.frames_failed, 0);
        let r0 = recovered.get(QueryId(0)).unwrap();
        assert!(r0.raw_sql.contains("temperature"));
        assert!(matches!(r0.validity, Validity::Repaired { .. }));
        assert_eq!(r0.template_fp, storage.get(QueryId(0)).unwrap().template_fp);
        assert_eq!(recovered.template_histogram(), storage.template_histogram());
        let r1 = recovered.get(QueryId(1)).unwrap();
        assert_eq!(r1.annotations.len(), 1);
        assert_eq!(r1.visibility, Visibility::Private);
        assert_eq!(recovered.edges().len(), 1);
        // The repaired text is searchable again in the recovered store.
        assert_eq!(
            recovered.trigram_index().search("temperature < 18"),
            vec![0]
        );
    }

    #[test]
    fn file_sink_roundtrip_with_torn_tail() {
        let dir = std::env::temp_dir().join(format!("cqms-wal-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        {
            let rec = open_dir(&dir, true).unwrap();
            let mut storage = rec.storage;
            storage.insert(record(0, "SELECT * FROM WaterTemp WHERE temp < 18", 0));
            storage.insert(record(1, "SELECT * FROM Lakes", 0));
            storage.wal_flush().unwrap();
        } // dropped without snapshot: the log is the only durable state

        // Corrupt the tail: append half a frame's worth of garbage.
        let (_, seg_path) = list_segments(&dir).unwrap().pop().unwrap();
        let pre_len = fs::metadata(&seg_path).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&seg_path).unwrap();
            f.write_all(&[0x13, 0x00, 0x00, 0x00, 0xAA, 0xBB]).unwrap();
        }

        let rec = open_dir(&dir, true).unwrap();
        assert_eq!(rec.storage.len(), 2);
        assert_eq!(rec.report.frames_replayed, 2);
        assert_eq!(rec.report.frames_failed, 0);
        assert_eq!(rec.report.torn_bytes_truncated, 6);
        // The file was physically truncated back to the valid prefix.
        assert_eq!(fs::metadata(&seg_path).unwrap().len(), pre_len);
        // And the store keeps working: next insert appends past max_lsn.
        let mut storage = rec.storage;
        storage.insert(record(2, "SELECT city FROM CityLocations", 1));
        storage.wal_flush().unwrap();
        let rec = open_dir(&dir, true).unwrap();
        assert_eq!(rec.storage.len(), 3);
        assert_eq!(rec.report.frames_failed, 0);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_sink_snapshot_cycle_bounds_the_log() {
        let dir = std::env::temp_dir().join(format!("cqms-wal-snap-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let rec = open_dir(&dir, true).unwrap();
        let mut storage = rec.storage;
        for i in 0..4 {
            storage.insert(record(i, "SELECT * FROM Lakes", 0));
        }
        let mut body = Vec::new();
        storage.snapshot(&mut body).unwrap();
        let horizon = storage.wal_last_lsn().unwrap();
        storage.wal_write_snapshot(horizon, &body).unwrap();
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1);
        assert_eq!(
            list_segments(&dir).unwrap().len(),
            1,
            "covered segment pruned, fresh one open"
        );
        storage.insert(record(4, "SELECT * FROM WaterTemp", 1));
        storage.wal_flush().unwrap();

        let rec = open_dir(&dir, true).unwrap();
        assert_eq!(rec.storage.len(), 5);
        assert_eq!(rec.report.snapshot_records, 4);
        assert_eq!(rec.report.frames_replayed, 1);
        assert_eq!(rec.report.frames_failed, 0);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_report_renders_one_line() {
        let report = RecoveryReport {
            snapshot_lsn: 10,
            snapshot_records: 4,
            segments_scanned: 2,
            frames_replayed: 3,
            frames_skipped: 1,
            frames_failed: 0,
            torn_bytes_truncated: 6,
            frames_lost: 2,
            bytes_quarantined: 77,
            max_lsn: 14,
        };
        let line = report.to_string();
        assert!(line.contains("snapshot@10"));
        assert!(line.contains("3 replayed"));
        assert!(line.contains("2 frame(s) lost"));
        assert!(line.contains("77 byte(s) quarantined"));
        assert!(line.contains("next lsn 15"));
        assert!(report.lossy());
        assert!(!RecoveryReport::default().lossy());
    }

    #[test]
    fn salvage_scan_resyncs_past_midlog_corruption() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, 1, &WalOp::Tombstone { id: QueryId(0) });
        let first_len = buf.len();
        encode_frame(&mut buf, 2, &WalOp::Tombstone { id: QueryId(1) });
        let second_len = buf.len() - first_len;
        encode_frame(&mut buf, 3, &WalOp::Tombstone { id: QueryId(2) });
        // Destroy the middle frame's CRC: decode stops there, salvage
        // resynchronises on the third frame.
        buf[first_len + 4] ^= 0xFF;
        let runs = salvage_scan(&buf);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].offset, 0);
        assert_eq!(runs[0].len, first_len);
        assert_eq!(runs[0].frames.len(), 1);
        assert_eq!(runs[0].frames[0].0, 1);
        assert_eq!(runs[1].offset, first_len + second_len);
        assert_eq!(runs[1].frames.len(), 1);
        assert_eq!(runs[1].frames[0].0, 3);
        // A clean log is a single run covering everything.
        let mut clean = Vec::new();
        encode_frame(&mut clean, 1, &WalOp::Tombstone { id: QueryId(0) });
        encode_frame(&mut clean, 2, &WalOp::Tombstone { id: QueryId(1) });
        let runs = salvage_scan(&clean);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].frames.len(), 2);
        assert_eq!(runs[0].len, clean.len());
    }

    #[test]
    fn recover_reports_lost_frames_on_broken_continuity() {
        let mut buf = Vec::new();
        for lsn in 1..=5u64 {
            encode_frame(
                &mut buf,
                lsn,
                // Storage ids are dense from 0; lsns start at 1.
                &WalOp::Insert(Box::new(InsertFrame::of(&record(
                    lsn - 1,
                    "SELECT * FROM Lakes",
                    0,
                )))),
            );
        }
        // Wreck frame 3 (offsets: each frame is buf.len()/5 bytes — they
        // are identical ops except the id, so equal length).
        let frame_len = buf.len() / 5;
        buf[2 * frame_len + 4] ^= 0xFF;
        let (storage, report, plan) = recover(None, &[(1, buf.clone())]).unwrap();
        // Frames 1-2 replay; 4-5 decode but continuity broke at 3.
        assert_eq!(report.frames_replayed, 2);
        assert_eq!(report.frames_lost, 2);
        assert!(report.bytes_quarantined >= 2 * frame_len);
        assert_eq!(report.torn_bytes_truncated, 0);
        assert_eq!(report.max_lsn, 2, "lost frames do not advance max_lsn");
        assert_eq!(storage.len(), 2);
        assert_eq!(plan.dispositions, vec![SegmentDisposition::Quarantine]);
        assert!(plan.needs_quarantine());
        assert!(plan.reasons[0].contains("2 frame(s) lost"));
    }

    #[test]
    fn recover_salvages_snapshot_covered_corruption_without_loss() {
        // Corruption confined to frames a snapshot already covers is no
        // loss at all: later frames resume exactly at horizon + 1.
        let mut buf = Vec::new();
        let mut storage = QueryStorage::new();
        for lsn in 1..=4u64 {
            // Storage ids are dense from 0; lsns start at 1.
            let rec = record(lsn - 1, "SELECT * FROM Lakes", 0);
            if lsn <= 2 {
                storage.insert(rec.clone());
            }
            encode_frame(
                &mut buf,
                lsn,
                &WalOp::Insert(Box::new(InsertFrame::of(&rec))),
            );
        }
        let mut snap = Vec::new();
        storage.snapshot(&mut snap).unwrap();
        let frame_len = buf.len() / 4;
        buf[4] ^= 0xFF; // wreck frame 1 (lsn 1 <= horizon 2: covered)
        let (recovered, report, plan) = recover(Some((2, &snap)), &[(1, buf)]).unwrap();
        assert_eq!(report.frames_lost, 0, "covered corruption loses nothing");
        assert_eq!(report.frames_replayed, 2, "lsn 3 and 4 salvaged");
        assert_eq!(report.frames_skipped, 1, "lsn 2 is a duplicate");
        assert!(report.bytes_quarantined >= frame_len);
        assert_eq!(recovered.len(), 4);
        assert!(plan.needs_quarantine());
    }

    #[test]
    fn snapshot_crc_trailer_roundtrip_and_mismatch() {
        let dir = std::env::temp_dir().join(format!("cqms-wal-crc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let body = b"line one\nline two\n";
        write_snapshot_file(&dir, 7, body, false).unwrap();
        let path = snapshot_path(&dir, 7);
        let (h, read_body) = read_snapshot_file(&path).unwrap();
        assert_eq!(h, 7);
        assert_eq!(read_body, body);
        // Flip a body byte: the checksum catches what parsing might not.
        let mut raw = fs::read(&path).unwrap();
        let i = raw.len() - SNAPSHOT_TRAILER_LEN - 3;
        raw[i] ^= 0x01;
        fs::write(&path, &raw).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // The trailer covers the header too: a flipped horizon digit
        // (`7` -> `5`) must not silently re-anchor replay.
        write_snapshot_file(&dir, 7, body, false).unwrap();
        let mut raw = fs::read(&path).unwrap();
        let j = b"wal-horizon ".len();
        raw[j] ^= 0x02;
        fs::write(&path, &raw).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // Legacy trailer-less snapshots still load.
        let mut legacy = b"wal-horizon 7\n".to_vec();
        legacy.extend_from_slice(body);
        fs::write(&path, &legacy).unwrap();
        let (h, read_body) = read_snapshot_file(&path).unwrap();
        assert_eq!(h, 7);
        assert_eq!(read_body, body);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_dir_quarantines_midlog_corruption_and_reanchors() {
        let dir = std::env::temp_dir().join(format!("cqms-wal-quar-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        {
            let rec = open_dir(&dir, true).unwrap();
            let mut storage = rec.storage;
            for i in 0..5 {
                storage.insert(record(i, "SELECT * FROM Lakes", 0));
            }
            storage.wal_flush().unwrap();
        }
        // Wreck an early frame mid-log: frames after it decode but lose
        // continuity, so they are real loss — reported, not silent.
        let (_, seg_path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut raw = fs::read(&seg_path).unwrap();
        let frame_len = raw.len() / 5;
        raw[2 * frame_len + 4] ^= 0xFF;
        fs::write(&seg_path, &raw).unwrap();

        let rec = open_dir(&dir, true).unwrap();
        assert_eq!(rec.storage.len(), 2);
        assert_eq!(rec.report.frames_lost, 2);
        assert!(rec.report.lossy());
        // The damaged segment moved to quarantine/ with a manifest line.
        assert!(!seg_path.exists());
        let manifest = fs::read_to_string(dir.join("quarantine").join("MANIFEST.txt")).unwrap();
        assert!(manifest.contains("frame(s) lost"), "{manifest}");
        assert_eq!(fs::read_dir(dir.join("quarantine")).unwrap().count(), 2);
        // Survivors were re-anchored in a snapshot; the next open is
        // clean and converges (no double-apply, nothing newly lost).
        let rec2 = open_dir(&dir, true).unwrap();
        assert_eq!(rec2.storage.len(), 2);
        assert!(!rec2.report.lossy());
        assert_eq!(rec2.report.max_lsn, rec.report.max_lsn);
        assert_eq!(
            rec2.storage.template_histogram(),
            rec.storage.template_histogram()
        );

        fs::remove_dir_all(&dir).unwrap();
    }
}
