//! The concurrent multi-user service layer.
//!
//! The paper's CQMS serves many analysts at once: the *online* components
//! (Query Profiler, Meta-query Executor — Fig. 4) answer interactive
//! requests while the Query Miner and Query Maintenance run in the
//! background. [`CqmsService`] is the façade that makes one [`Cqms`]
//! instance safely shareable across client threads with a strict
//! **read/write lock discipline**:
//!
//! * **Read path** — completion, every meta-query search mode,
//!   recommendation, correction. These call the `&self` methods of [`Cqms`]
//!   under the *read* side of an `RwLock`, so any number of clients search
//!   and complete concurrently. The only mutable state on this path lives
//!   behind interior mutability: the feature-relation engine's lazy hash
//!   indexes are published as an epoch snapshot (`Arc`-swapped, rebuilt
//!   off-lock — a contended SELECT never degrades or queues), and the rule
//!   miner's result cache takes a blocking lock but holds it just long
//!   enough to copy results in or out — the mining itself runs outside the
//!   lock.
//! * **Write path** — query ingestion, annotations, ACL changes, deletes,
//!   miner epochs, maintenance passes. These take the write side and
//!   serialise as a group, exactly like the single-user [`Cqms`].
//! * **Batched ingestion** — [`CqmsService::ingest_batch`] amortises the
//!   write lock (and the readers' wait) over a whole batch of queries
//!   instead of paying one acquisition per statement.
//! * **Background mining** — [`CqmsService::start_miner`] runs the Query
//!   Miner on its own thread; [`CqmsService::shutdown`] (or dropping the
//!   last service clone) joins it gracefully after one final epoch, so
//!   rules mined from the most recent queries stay visible.
//! * **Durability** — over a durable CQMS (built by [`Cqms::open`]) every
//!   write-path method flushes the write-ahead log before returning, and
//!   [`CqmsService::ingest_batch`] flushes **once per batch**: an `Ok`
//!   result is an acknowledgement that the query survives a crash. See
//!   [`crate::wal`] for the log format and recovery semantics.
//!
//! The service is `Clone` (cheap: two `Arc`s); hand one clone to each
//! client thread. See `tests/concurrency.rs` for the multi-writer /
//! multi-reader stress test and `benches/e10_concurrency.rs` for the read
//! scaling experiment.

use crate::admission::{retry_with_backoff, AdmissionGate};
use crate::assist::completion::Suggestion;
use crate::assist::correction::{Correction, RepairSuggestion};
use crate::assist::recommend::PanelRow;
use crate::error::CqmsError;
use crate::faults::{self, FaultPlan};
use crate::maintenance::{MaintenanceReport, RefreshReport};
use crate::metaquery::{ScoredHit, TreePattern};
use crate::miner::assoc::AssocRule;
use crate::model::*;
use crate::profiler::ProfiledQuery;
use crate::server::{spawn_background_miner_hooked, BackgroundMiner, Cqms, MinerReport};
use crate::similarity::DistanceKind;
use crate::snapshot::{assert_not_inside_snapshot_read, ReadSnapshot};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One query of a batched ingest ([`CqmsService::ingest_batch`]).
#[derive(Debug, Clone)]
pub struct IngestItem {
    /// The issuing analyst.
    pub user: UserId,
    /// The SQL to run and log.
    pub sql: String,
    /// Explicit trace time; `None` ticks the internal clock (+30 s).
    pub ts: Option<u64>,
}

impl IngestItem {
    /// An item at the service's internal clock.
    pub fn new(user: UserId, sql: impl Into<String>) -> Self {
        IngestItem {
            user,
            sql: sql.into(),
            ts: None,
        }
    }

    /// An item with an explicit trace time.
    pub fn at(user: UserId, sql: impl Into<String>, ts: u64) -> Self {
        IngestItem {
            user,
            sql: sql.into(),
            ts: Some(ts),
        }
    }
}

/// A thread-safe, cloneable handle to a shared CQMS.
#[derive(Clone)]
pub struct CqmsService {
    cqms: Arc<RwLock<Cqms>>,
    /// The published [`ReadSnapshot`]: the lock-free read path's whole
    /// world. Writers replace the inner `Arc` under a *momentary* write
    /// lock; readers clone it under a momentary read lock and then run
    /// with no lock at all. (The slot lock is never held across any
    /// actual work on either side.)
    published: Arc<RwLock<Arc<ReadSnapshot>>>,
    /// Monotonic snapshot publication epoch.
    epoch: Arc<AtomicU64>,
    miner: Arc<Mutex<Option<BackgroundMiner>>>,
    admission: Arc<AdmissionGate>,
    faults: Arc<FaultPlan>,
}

impl CqmsService {
    /// Wrap a CQMS for shared multi-threaded use.
    pub fn new(cqms: Cqms) -> Self {
        Self::from_shared(Arc::new(RwLock::new(cqms)))
    }

    /// Build a service over an already-shared CQMS (e.g. one that other
    /// code also holds via
    /// [`crate::server::spawn_background_miner`]).
    pub fn from_shared(cqms: Arc<RwLock<Cqms>>) -> Self {
        let (admission, initial) = {
            let guard = cqms.read();
            (
                Arc::new(AdmissionGate::from_config(&guard.config)),
                Arc::new(guard.capture_snapshot(0)),
            )
        };
        CqmsService {
            cqms,
            published: Arc::new(RwLock::new(initial)),
            epoch: Arc::new(AtomicU64::new(0)),
            miner: Arc::new(Mutex::new(None)),
            admission,
            // Every service gets its *own* plan, so tests can fault one
            // shard without touching the others; the ambient CQMS_FAULTS
            // plan is consulted additionally on the read path (see
            // `read_guard`), keeping CI-wide chaos and per-shard
            // injection independent.
            faults: Arc::new(FaultPlan::new()),
        }
    }

    /// The shared lock itself, for callers that need custom locking scope.
    pub fn shared(&self) -> Arc<RwLock<Cqms>> {
        self.cqms.clone()
    }

    /// This service's admission gate (stats, direct bucket checks).
    pub fn admission(&self) -> &AdmissionGate {
        &self.admission
    }

    /// This service's fault plan — arm failpoints here to inject faults
    /// into this service (and only this service; the `CQMS_FAULTS`
    /// process-wide plan is separate and consulted in addition).
    pub fn fault_plan(&self) -> Arc<FaultPlan> {
        self.faults.clone()
    }

    /// Take the read lock, first evaluating the `shard.read` failpoint on
    /// the ambient (`CQMS_FAULTS`) plan and this service's own plan (a
    /// delay here simulates a slow/overloaded shard for deadline tests;
    /// other actions are meaningless for reads and ignored). Only the
    /// engine-bound reads still come through here — everything else is
    /// served off the published [`ReadSnapshot`].
    fn read_guard(&self) -> RwLockReadGuard<'_, Cqms> {
        assert_not_inside_snapshot_read("CqmsService::read_guard");
        let _ = faults::global_plan().hit(faults::SHARD_READ);
        let _ = self.faults.hit(faults::SHARD_READ);
        self.cqms.read()
    }

    /// Take the write lock (debug builds prove no snapshot read path
    /// sneaks through here).
    fn write_guard(&self) -> RwLockWriteGuard<'_, Cqms> {
        assert_not_inside_snapshot_read("CqmsService::write_guard");
        self.cqms.write()
    }

    /// Capture + publish a fresh snapshot from the (locked) instance.
    /// Callers hold the CQMS write lock (or, for [`Self::republish`], the
    /// read lock), so epochs are allocated in lock order; the slot guard
    /// below makes out-of-order slot writes harmless anyway.
    fn publish(&self, cqms: &Cqms) {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let snap = Arc::new(cqms.capture_snapshot(epoch));
        let mut slot = self.published.write();
        if snap.epoch() >= slot.epoch() {
            *slot = snap;
        }
    }

    // ------------------------------------------------------------------
    // Read path (lock-free: one Arc clone under a momentary slot lock)
    // ------------------------------------------------------------------

    /// The currently published read snapshot: **one `Arc` clone under a
    /// momentary lock**, then the caller runs entirely lock-free —
    /// unblocked by writers, miner epochs, index rebuilds and repair
    /// promotions, all of which publish new snapshots without touching
    /// outstanding ones. The `shard.read` failpoints are consulted here,
    /// so deadline/fault tests exercise this path like any other read.
    pub fn snapshot(&self) -> Arc<ReadSnapshot> {
        let _ = faults::global_plan().hit(faults::SHARD_READ);
        let _ = self.faults.hit(faults::SHARD_READ);
        Arc::clone(&self.published.read())
    }

    /// Re-capture and publish the snapshot from the live instance. Only
    /// needed after mutating through [`CqmsService::shared`] directly —
    /// every service-level write (and the hooked background miner)
    /// already publishes.
    pub fn republish(&self) {
        let guard = self.cqms.read();
        self.publish(&guard);
    }

    /// Run `f` under the read lock (escape hatch for compound reads that
    /// must see the *live* instance — e.g. engine-bound reads; snapshot
    /// readers use [`CqmsService::snapshot`] instead).
    pub fn read<R>(&self, f: impl FnOnce(&Cqms) -> R) -> R {
        f(&self.read_guard())
    }

    /// Completions for partial SQL (Fig. 3 dropdown).
    pub fn complete(&self, user: UserId, partial_sql: &str, k: usize) -> Vec<Suggestion> {
        self.snapshot().complete(user, partial_sql, k)
    }

    /// TF-IDF keyword search over logged query text.
    pub fn search_keyword(&self, user: UserId, query: &str, k: usize) -> Vec<ScoredHit> {
        self.snapshot().search_keyword(user, query, k)
    }

    /// Exact substring search over logged query text.
    pub fn search_substring(&self, user: UserId, needle: &str) -> Vec<QueryId> {
        self.snapshot().search_substring(user, needle)
    }

    /// SQL meta-query over the Figure 1 feature relations (engine-bound:
    /// runs on the live instance under the read lock).
    pub fn search_feature_sql(
        &self,
        user: UserId,
        sql: &str,
    ) -> Result<relstore::QueryResult, CqmsError> {
        self.read_guard().search_feature_sql(user, sql)
    }

    /// Structural search by parse-tree pattern.
    pub fn search_parse_tree(&self, user: UserId, pattern: &TreePattern) -> Vec<QueryId> {
        self.snapshot().search_parse_tree(user, pattern)
    }

    /// Query-by-data: find queries whose output did/didn't contain
    /// values. The summary-only variant runs lock-free off the snapshot;
    /// `reexecute` needs the live data engine and stays on the lock.
    pub fn search_by_data(
        &self,
        user: UserId,
        include: &[&str],
        exclude: &[&str],
        reexecute: bool,
    ) -> Vec<QueryId> {
        if reexecute {
            self.read_guard()
                .search_by_data(user, include, exclude, true)
        } else {
            self.snapshot().search_by_data(user, include, exclude)
        }
    }

    /// kNN similarity search around ad-hoc SQL.
    pub fn similar_queries(
        &self,
        user: UserId,
        sql: &str,
        k: usize,
        metric: DistanceKind,
    ) -> Result<Vec<ScoredHit>, CqmsError> {
        self.snapshot().similar_queries(user, sql, k, metric)
    }

    /// The Fig. 3 recommendation panel for a seed query.
    pub fn recommend(
        &self,
        user: UserId,
        seed_sql: &str,
        k: usize,
    ) -> Result<Vec<PanelRow>, CqmsError> {
        self.snapshot().recommend(user, seed_sql, k)
    }

    /// Misspelled table/column detection with suggested fixes
    /// (engine-bound: needs the live catalog).
    pub fn check_identifiers(&self, sql: &str) -> Vec<Correction> {
        self.read_guard().check_identifiers(sql)
    }

    /// Predicate relaxations for a query that returned nothing
    /// (engine-bound: re-executes relaxations on the live data).
    pub fn repair_empty_result(&self, sql: &str, k: usize) -> Vec<RepairSuggestion> {
        self.read_guard().repair_empty_result(sql, k)
    }

    /// Number of live (visible, usable) logged queries.
    pub fn live_count(&self) -> usize {
        self.snapshot().live_count()
    }

    /// The published structural-index generation number.
    pub fn index_generation(&self) -> u64 {
        self.snapshot().index_generation()
    }

    /// Current trace time.
    pub fn now(&self) -> u64 {
        self.snapshot().now()
    }

    /// The latest mined association rules (cloned out of the snapshot).
    pub fn association_rules(&self) -> Vec<AssocRule> {
        self.snapshot().association_rules().to_vec()
    }

    // ------------------------------------------------------------------
    // Write path (write lock)
    // ------------------------------------------------------------------

    /// Run `f` under the write lock (escape hatch for compound writes).
    /// A fresh snapshot is published before the lock is released.
    pub fn write<R>(&self, f: impl FnOnce(&mut Cqms) -> R) -> R {
        let mut guard = self.write_guard();
        let out = f(&mut guard);
        self.publish(&guard);
        out
    }

    /// Atomically swap the shared CQMS instance for `cqms`, returning the
    /// one it replaced — the repair supervisor's promotion hook: a
    /// repaired shard's recovered instance takes the place of the empty
    /// degraded placeholder, and every clone of this service (including a
    /// running background miner) sees the new instance at its next lock.
    ///
    /// The write lock is taken with a bounded retry (the same grace
    /// budget as a miner epoch) so a stuck reader can delay but never
    /// deadlock the supervisor; on timeout `cqms` is handed back in
    /// `Err` for a later attempt.
    ///
    /// The outgoing instance's [`admin::Directory`](crate::admin::Directory)
    /// is carried over into `cqms` under the same lock: directory state is
    /// deployment-level (broadcast to every shard, never WAL-logged), so the
    /// fenced placeholder — which kept receiving admin broadcasts while the
    /// shard was degraded — holds the authoritative copy, not the recovered
    /// instance rebuilt from the log.
    // The Err variant hands the whole instance back by design — the
    // supervisor retries with it on a later epoch instead of dropping
    // the recovered state on the floor.
    #[allow(clippy::result_large_err)]
    pub fn try_replace(&self, cqms: Cqms) -> Result<Cqms, Cqms> {
        assert_not_inside_snapshot_read("CqmsService::try_replace");
        const REPLACE_ATTEMPTS: usize = 500;
        let mut incoming = cqms;
        for _ in 0..REPLACE_ATTEMPTS {
            if let Some(mut guard) = self.cqms.try_write() {
                incoming.directory = std::mem::take(&mut guard.directory);
                let outgoing = std::mem::replace(&mut *guard, incoming);
                // One atomic epoch bump covering the whole promotion:
                // the placeholder's snapshot is invalidated and the
                // recovered instance's published in a single slot swap,
                // so no reader can ever pair the promoted shard's
                // indexes with the placeholder's popularity tables (or
                // vice versa). Readers pinned to the old snapshot keep a
                // fully coherent placeholder view until they re-clone.
                self.publish(&guard);
                return Ok(outgoing);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        Err(incoming)
    }

    /// Run + profile one query (WAL flushed before returning).
    ///
    /// Gated by admission control: when the shard already has
    /// `ingest_queue_depth` writers admitted, or the user's token bucket
    /// is drained, this fails fast with [`CqmsError::Overloaded`] instead
    /// of queueing on the write lock.
    pub fn run_query(&self, user: UserId, sql: &str) -> Result<ProfiledQuery, CqmsError> {
        let _permit = self.admission.admit_user(user)?;
        let mut guard = self.write_guard();
        let out = guard.run_query(user, sql);
        let flushed = guard.wal_flush();
        // Publish even when profiling failed: failed attempts still tick
        // the trace clock, and snapshot `now()` must track it.
        self.publish(&guard);
        drop(guard);
        let out = out?;
        flushed?;
        Ok(out)
    }

    /// [`CqmsService::run_query`] at an explicit trace time (same
    /// admission gating).
    pub fn run_query_at(
        &self,
        user: UserId,
        sql: &str,
        ts: u64,
    ) -> Result<ProfiledQuery, CqmsError> {
        let _permit = self.admission.admit_user(user)?;
        let mut guard = self.write_guard();
        let out = guard.run_query_at(user, sql, ts);
        let flushed = guard.wal_flush();
        self.publish(&guard);
        drop(guard);
        let out = out?;
        flushed?;
        Ok(out)
    }

    /// Ingest a batch of queries under **one** write-lock acquisition.
    ///
    /// With many writers, per-statement locking makes readers requeue
    /// behind every single statement; batching bounds that to once per
    /// batch. Items run in order; a failure is recorded in its slot and
    /// does not abort the rest of the batch.
    ///
    /// On a durable CQMS ([`Cqms::open`]) the WAL is flushed **once per
    /// batch**, before the results are returned — an `Ok` slot is an
    /// acknowledgement that the query survives a crash. If that flush
    /// fails, every would-be-acknowledged slot is converted to the flush
    /// error instead (nothing is acknowledged that is not durable).
    ///
    /// **Partial-failure semantics under admission control**: each item is
    /// charged against its user's token bucket *before* the lock is
    /// taken; a rate-shed item gets [`CqmsError::Overloaded`] in its slot,
    /// is never executed, and therefore never acknowledges durability —
    /// while admitted items in the same batch still run and flush
    /// normally. The whole batch holds **one** depth-gate slot; if the
    /// gate itself is at capacity every slot is `Overloaded` and nothing
    /// runs.
    pub fn ingest_batch(&self, items: &[IngestItem]) -> Vec<Result<QueryId, CqmsError>> {
        // An empty batch has nothing to make durable: don't contend on the
        // write lock or pay a WAL flush for it.
        if items.is_empty() {
            return Vec::new();
        }
        // Per-item rate-limit charge, outside the lock: one user's drained
        // bucket sheds that user's items only.
        let mut results: Vec<Result<QueryId, CqmsError>> = items
            .iter()
            .map(|item| self.admission.check_user(item.user).map(|()| QueryId(0)))
            .collect();
        if results.iter().all(|r| r.is_err()) {
            return results;
        }
        // One in-flight slot for the whole batch (batching is the unit of
        // lock amortisation, so it is also the unit of depth accounting).
        let permit = match self.admission.admit() {
            Ok(p) => p,
            Err(e) => return items.iter().map(|_| Err(e.clone())).collect(),
        };
        let mut guard = self.write_guard();
        for (slot, item) in results.iter_mut().zip(items) {
            if slot.is_err() {
                continue; // rate-shed: never executed, never acknowledged
            }
            *slot = match item.ts {
                Some(ts) => guard.run_query_at(item.user, &item.sql, ts),
                None => guard.run_query(item.user, &item.sql),
            }
            .map(|p| p.id);
        }
        let flushed = guard.wal_flush();
        // One publication per batch: batching is the unit of lock
        // amortisation, so it is also the unit of snapshot capture.
        self.publish(&guard);
        drop(guard);
        drop(permit);
        match flushed {
            Ok(()) => results,
            // Only would-be-acknowledged slots become the flush error;
            // already-failed slots (parse errors, shed items) keep theirs.
            Err(e) => results.into_iter().map(|r| r.and(Err(e.clone()))).collect(),
        }
    }

    /// Register (or look up) a user by name.
    pub fn register_user(&self, name: &str) -> UserId {
        let mut guard = self.write_guard();
        let id = guard.register_user(name);
        self.publish(&guard);
        id
    }

    /// Create a collaboration group.
    pub fn create_group(&self, name: &str) -> GroupId {
        let mut guard = self.write_guard();
        let id = guard.create_group(name);
        self.publish(&guard);
        id
    }

    /// Add a user to a group.
    pub fn join_group(&self, user: UserId, group: GroupId) -> Result<(), CqmsError> {
        let mut guard = self.write_guard();
        let out = guard.join_group(user, group);
        self.publish(&guard);
        out
    }

    /// Attach an annotation (durably acknowledged).
    pub fn annotate(
        &self,
        actor: UserId,
        id: QueryId,
        text: &str,
        fragment: Option<&str>,
    ) -> Result<(), CqmsError> {
        let mut guard = self.write_guard();
        guard.annotate(actor, id, text, fragment)?;
        let flushed = guard.wal_flush();
        self.publish(&guard);
        flushed
    }

    /// Change a query's ACL (durably acknowledged).
    pub fn set_visibility(
        &self,
        actor: UserId,
        id: QueryId,
        visibility: Visibility,
    ) -> Result<(), CqmsError> {
        let mut guard = self.write_guard();
        guard.set_visibility(actor, id, visibility)?;
        let flushed = guard.wal_flush();
        self.publish(&guard);
        flushed
    }

    /// Tombstone a query (durably acknowledged).
    pub fn delete_query(&self, actor: UserId, id: QueryId) -> Result<(), CqmsError> {
        let mut guard = self.write_guard();
        guard.delete_query(actor, id)?;
        let flushed = guard.wal_flush();
        self.publish(&guard);
        flushed
    }

    /// Run one synchronous miner epoch on the caller's thread. A failure
    /// of the closing WAL flush is surfaced in
    /// [`MinerReport::wal_flush_error`] rather than swallowed: the epoch
    /// mostly derives state, but refined sessions are re-logged and a due
    /// snapshot rotates the log, so the caller must be able to see that
    /// those did not reach disk. Transient flush faults are retried with
    /// capped exponential backoff first
    /// ([`CqmsConfig::wal_retry_attempts`](crate::config::CqmsConfig));
    /// recovered retries are counted in [`MinerReport::wal_flush_retries`].
    pub fn run_miner_epoch(&self) -> MinerReport {
        let mut guard = self.write_guard();
        let mut report = guard.run_miner_epoch();
        let (attempts, base_ms) = (
            guard.config.wal_retry_attempts,
            guard.config.wal_retry_base_ms,
        );
        let (flushed, retries) =
            retry_with_backoff(attempts, base_ms, base_ms * 8, || guard.wal_flush());
        report.wal_flush_retries = retries;
        if let Err(e) = flushed {
            report.wal_flush_error = Some(e);
        }
        self.publish(&guard);
        report
    }

    /// Run one Query Maintenance pass (validity sweep + stats refresh).
    pub fn run_maintenance(&self) -> Result<(MaintenanceReport, RefreshReport), CqmsError> {
        self.run_maintenance_with_basis(None)
    }

    /// [`CqmsService::run_maintenance`] with an externally supplied
    /// latency basis for the quality pass (sharded deployments pass the
    /// merged global basis; `None` uses this store's own).
    pub fn run_maintenance_with_basis(
        &self,
        basis: Option<&[u64]>,
    ) -> Result<(MaintenanceReport, RefreshReport), CqmsError> {
        let mut guard = self.write_guard();
        let out = guard.run_maintenance_with_basis(basis);
        let flushed = guard.wal_flush();
        self.publish(&guard);
        drop(guard);
        let out = out?;
        flushed?;
        Ok(out)
    }

    /// Execute a scheduled index rebuild, double-buffered: the snapshot
    /// is collected under a *momentary* read lock (per-record `Arc`
    /// clones only), the O(n log n) build of generation N+1 then runs
    /// with **no lock held** — concurrent searches *and* writers proceed
    /// against generation N the whole time — and the write lock is taken
    /// only for the delta replay of whatever landed mid-build plus the
    /// single atomic swap. Returns `false` when no rebuild was
    /// scheduled. (The background miner does the same dance on its own
    /// thread; this entry point is for explicit maintenance and the
    /// rebuild-race benches/tests.)
    pub fn rebuild_indexes(&self) -> bool {
        let snapshot = {
            let guard = self.read_guard();
            if !guard.storage.index_rebuild_pending() {
                return false;
            }
            guard.storage.collect_index_rebuild()
        };
        let build = snapshot.build(); // off-lock
        let mut guard = self.write_guard();
        let swapped = guard.storage.publish_index_rebuild(build);
        // One epoch bump covering the generation swap: a reader either
        // keeps the whole pre-rebuild snapshot or clones the whole
        // post-rebuild one — never generation N+1 indexes with
        // generation N popularity/session state.
        self.publish(&guard);
        swapped
    }

    // ------------------------------------------------------------------
    // Background miner lifecycle
    // ------------------------------------------------------------------

    /// Start the background Query Miner (one epoch every `interval`).
    /// Returns `false` when a miner is already running.
    pub fn start_miner(&self, interval: Duration) -> bool {
        let mut slot = self.miner.lock();
        if slot.is_some() {
            return false;
        }
        let published = Arc::clone(&self.published);
        let epoch = Arc::clone(&self.epoch);
        let publisher: crate::server::SnapshotPublisher = Arc::new(move |cqms: &Cqms| {
            // Same discipline as `CqmsService::publish`: invoked while the
            // miner thread still holds the write guard, so epochs are
            // lock-ordered and the guard below is a formality.
            let e = epoch.fetch_add(1, Ordering::Relaxed) + 1;
            let snap = Arc::new(cqms.capture_snapshot(e));
            let mut slot = published.write();
            if snap.epoch() >= slot.epoch() {
                *slot = snap;
            }
        });
        *slot = Some(spawn_background_miner_hooked(
            self.cqms.clone(),
            interval,
            self.faults.clone(),
            Some(publisher),
        ));
        true
    }

    /// Is a background miner currently attached?
    pub fn miner_running(&self) -> bool {
        self.miner.lock().is_some()
    }

    /// Stop the background miner, if any: it runs one final epoch, the
    /// thread is joined, and the epoch count is returned.
    pub fn stop_miner(&self) -> Option<usize> {
        let handle = self.miner.lock().take();
        handle.map(BackgroundMiner::stop)
    }

    /// Graceful shutdown: stop the background miner (final epoch included).
    /// Idempotent — later calls (and other clones' drops) are no-ops.
    pub fn shutdown(&self) -> Option<usize> {
        self.stop_miner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CqmsConfig;
    use relstore::Engine;
    use workload::Domain;

    fn service() -> (CqmsService, UserId) {
        let mut engine = Engine::new();
        Domain::Lakes.setup(&mut engine, 60, 3);
        let svc = CqmsService::new(Cqms::new(engine, CqmsConfig::default()));
        let user = svc.register_user("alice");
        (svc, user)
    }

    #[test]
    fn reads_and_writes_through_the_service() {
        let (svc, user) = service();
        let id = svc
            .run_query(user, "SELECT lake, temp FROM WaterTemp WHERE temp < 18")
            .unwrap()
            .id;
        assert_eq!(svc.live_count(), 1);
        assert_eq!(svc.search_keyword(user, "temp", 5).len(), 1);
        assert_eq!(svc.search_substring(user, "temp < 18"), vec![id]);
        assert!(!svc.complete(user, "SELECT * FROM ", 5).is_empty());
        svc.annotate(user, id, "cold lakes", None).unwrap();
        svc.delete_query(user, id).unwrap();
        assert_eq!(svc.live_count(), 0);
    }

    #[test]
    fn batched_ingestion_takes_one_lock_and_reports_per_item() {
        let (svc, user) = service();
        let batch = vec![
            IngestItem::at(user, "SELECT * FROM WaterTemp WHERE temp < 18", 100),
            IngestItem::at(user, "SELECT * FROM WaterTemp WHERE temp < 20", 130),
            IngestItem::new(user, "SELECT salinity FROM WaterSalinity"),
        ];
        let ids = svc.ingest_batch(&batch);
        assert_eq!(ids.len(), 3);
        assert!(ids.iter().all(|r| r.is_ok()));
        assert_eq!(svc.live_count(), 3);
        // The clock-ticking item advanced past the explicit timestamps.
        assert_eq!(svc.now(), 160);
    }

    #[test]
    fn empty_batch_takes_no_lock_and_flushes_nothing() {
        let (svc, _user) = service();
        let shared = svc.shared();
        let _guard = shared.write();
        // Would deadlock here if the empty batch still acquired the write
        // lock (same thread already holds it).
        assert!(svc.ingest_batch(&[]).is_empty());
    }

    #[test]
    fn out_of_order_explicit_timestamps_never_regress_the_clock() {
        let (svc, user) = service();
        // A ticking item advances to 30; explicit timestamps then arrive
        // out of order and must never rewind `now()`.
        svc.run_query(user, "SELECT * FROM WaterTemp").unwrap();
        assert_eq!(svc.now(), 30);
        svc.run_query_at(user, "SELECT * FROM WaterTemp WHERE temp < 5", 500)
            .unwrap();
        svc.run_query_at(user, "SELECT * FROM WaterTemp WHERE temp < 6", 100)
            .unwrap();
        assert_eq!(svc.now(), 500, "stale explicit timestamp rewound now()");
        // A ticking item continues from the high-water mark.
        svc.run_query(user, "SELECT salinity FROM WaterSalinity")
            .unwrap();
        assert_eq!(svc.now(), 530);
        // The batched variant of the same interleaving (the `now() == 160`
        // case of `batched_ingestion_...`, scrambled out of order).
        let batch = vec![
            IngestItem::at(user, "SELECT * FROM WaterTemp WHERE temp < 20", 700),
            IngestItem::at(user, "SELECT * FROM WaterTemp WHERE temp < 18", 600),
            IngestItem::new(user, "SELECT lake FROM WaterTemp"),
        ];
        assert!(svc.ingest_batch(&batch).iter().all(|r| r.is_ok()));
        assert_eq!(svc.now(), 730, "tick must ride the monotonic maximum");
    }

    #[test]
    fn concurrent_readers_share_one_clone_each() {
        let (svc, user) = service();
        for i in 0..6 {
            svc.run_query(user, &format!("SELECT * FROM WaterTemp WHERE temp < {i}"))
                .unwrap();
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let svc = svc.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        assert!(!svc
                            .complete(user, "SELECT * FROM WaterTemp WHERE ", 5)
                            .is_empty());
                        assert!(svc.search_keyword(user, "watertemp", 5).len() <= 5);
                    }
                });
            }
        });
        assert_eq!(svc.live_count(), 6);
    }

    #[test]
    fn miner_lifecycle_is_idempotent() {
        let (svc, user) = service();
        for i in 0..6 {
            svc.run_query(
                user,
                &format!("SELECT * FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x AND T.temp < {i}"),
            )
            .unwrap();
        }
        // Interval far beyond the test's lifetime: the only epoch that can
        // run is the final shutdown epoch.
        assert!(svc.start_miner(Duration::from_secs(3600)));
        assert!(!svc.start_miner(Duration::from_secs(3600)));
        assert!(svc.miner_running());
        let epochs = svc.shutdown().expect("miner was running");
        assert_eq!(epochs, 1, "exactly the final shutdown epoch");
        assert!(!svc.miner_running());
        assert!(svc.shutdown().is_none(), "second shutdown is a no-op");
        // The final epoch's results are visible after shutdown.
        assert!(!svc.association_rules().is_empty());
    }
}
