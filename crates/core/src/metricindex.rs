//! Metric-indexed kNN for the structural similarity metrics.
//!
//! PR 3 made the Features/Combined/Output metrics interactive with
//! signatures and posting-list pruning, but the two tree metrics still
//! brute-forced every live record per probe. Tree edit distance is a true
//! metric, so the classic fix applies: a vantage-point tree over the
//! *unnormalised* Zhang–Shasha distance (where the triangle inequality
//! holds), searched best-first under the *normalised* distance the kNN API
//! returns, with per-subtree size ranges converting between the two.
//!
//! Three pruning layers, all exactness-preserving (the VP-tree proptest
//! pins ids and scores to the brute-force scan):
//!
//! 1. **triangle bands** — each inner node stores the min/max
//!    pivot-distance band of each child; `TED(q, x) ≥ max(d(q,p) − hi,
//!    lo − d(q,p))` bounds a whole subtree below with one pivot distance;
//! 2. **size gaps** — subtrees also store their min/max tree size;
//!    `TED(q, x) ≥ |size(q) − size(x)|` prunes size-mismatched subtrees
//!    without any distance computation;
//! 3. **label histograms** — before the O(tree²) DP runs on a surviving
//!    leaf entry, the [`sqlparse::TreeShape`] bound
//!    (`max(sizes) − Σ_label min(counts)`) and the leaf's stored
//!    pivot-distance give two more O(|labels|)/O(1) rejections.
//!
//! The tree indexes every non-tombstoned record that has a parse tree —
//! including currently flagged/obsoleted ones, which maintenance may
//! revive — and filters liveness/visibility at query time through the
//! caller's `accept` closure. Tombstones accumulate as dead weight; the
//! [`crate::indexreg::IndexRegistry`] counts them and *schedules* a
//! background rebuild once they exceed [`REBUILD_DEAD_FRACTION`] — the
//! probe path itself never rebuilds.

use crate::metaquery::{ScoredHit, TopK};
use crate::model::QueryId;
use sqlparse::{normalized_from_ted, tree_edit_distance, TreeNode, TreeShape};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default leaf bucket capacity. Larger buckets mean fewer mandatory
/// pivot distance computations on the way down, trading against the
/// (much cheaper) per-entry histogram + parent-pivot screens at the
/// leaves; 128 measured best on the e7 workload by a wide margin.
const LEAF_CAP: usize = 128;

/// Tombstone fraction beyond which the index registry schedules a
/// background rebuild into the next miner epoch.
pub const REBUILD_DEAD_FRACTION: f64 = 0.25;

/// Sentinel for "no parent pivot" (entries in a root-level leaf).
const NO_PARENT: u32 = u32::MAX;

/// Cheap-bound effectiveness counters for one metric (relaxed atomics —
/// the counters feed the bench's `bound_hit_rate`, not control flow).
#[derive(Debug, Default)]
pub struct MetricStats {
    /// Pairs (or whole subtrees' worth of pairs) rejected by a cheap
    /// bound without running the exact metric.
    pub bound_hits: AtomicU64,
    /// Pairs where the exact metric ran.
    pub exact_evals: AtomicU64,
}

impl MetricStats {
    /// Count `n` pairs disposed of by a cheap bound.
    pub fn add_hits(&self, n: u64) {
        self.bound_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` pairs that paid the exact metric.
    pub fn add_exact(&self, n: u64) {
        self.exact_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Fraction of considered pairs a cheap bound disposed of.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.bound_hits.load(Ordering::Relaxed) as f64;
        let exact = self.exact_evals.load(Ordering::Relaxed) as f64;
        if hits + exact == 0.0 {
            0.0
        } else {
            hits / (hits + exact)
        }
    }

    /// Zero both counters.
    pub fn reset(&self) {
        self.bound_hits.store(0, Ordering::Relaxed);
        self.exact_evals.store(0, Ordering::Relaxed);
    }
}

/// Per-metric stats plus generation observability, owned by the index
/// registry (reachable through `QueryStorage::metric_stats`).
#[derive(Debug, Default)]
pub struct MetricIndexStats {
    /// Bound/exact counters of the TreeEdit sweeps.
    pub tree_edit: MetricStats,
    /// Bound/exact counters of the ParseTree sweeps.
    pub parse_tree: MetricStats,
    /// The published structural-index generation (0 until the first
    /// background rebuild publishes). Bumped by exactly 1 per atomic
    /// swap — tests assert probes never advance it.
    pub generation: AtomicU64,
    /// Rebuilds requested (tombstone threshold, reindex, summary
    /// refresh) since process start.
    pub rebuilds_scheduled: AtomicU64,
    /// Rebuilds built + published since process start.
    pub rebuilds_completed: AtomicU64,
}

/// One indexed record: its id, cached constant-stripped tree and shape
/// (both `Arc`-shared with the record's signature — index entries own no
/// per-entry heap blocks, so building or retiring a whole generation
/// never scatters allocations through the record heap).
#[derive(Debug, Clone)]
pub struct TreeEntry {
    /// The indexed record's id.
    pub qid: u64,
    /// Cached constant-stripped parse tree.
    pub tree: Arc<TreeNode>,
    /// Cached size + label-histogram shape.
    pub shape: Arc<TreeShape>,
}

/// Aggregate description of one child subtree: the pivot-distance band
/// its entries fall in, their tree-size range, and how many there are.
#[derive(Debug, Clone, Copy)]
struct Band {
    lo: u32,
    hi: u32,
    min_size: u32,
    max_size: u32,
    /// Smallest qid in the subtree — lets tie plateaus prune: a subtree
    /// whose bound only *ties* the current k-th score cannot displace it
    /// unless it holds a smaller id (ties break by ascending id).
    min_qid: u64,
    count: u32,
}

impl Band {
    fn empty() -> Band {
        Band {
            lo: u32::MAX,
            hi: 0,
            min_size: u32::MAX,
            max_size: 0,
            min_qid: u64::MAX,
            count: 0,
        }
    }

    fn widen(&mut self, dist: u32, size: u32, qid: u64) {
        self.lo = self.lo.min(dist);
        self.hi = self.hi.max(dist);
        self.min_size = self.min_size.min(size);
        self.max_size = self.max_size.max(size);
        self.min_qid = self.min_qid.min(qid);
        self.count += 1;
    }

    /// Lower bound on the *normalised* distance from a probe (with exact
    /// pivot distance `d_qp` and size `sq`) to any entry in this subtree.
    fn lower_bound(&self, d_qp: u32, sq: u32) -> f64 {
        // Triangle on the unnormalised metric, then divide by the largest
        // denominator any entry could have.
        let t_min = (d_qp.saturating_sub(self.hi)).max(self.lo.saturating_sub(d_qp));
        let triangle = normalized_from_ted(t_min as usize, sq as usize, self.max_size as usize);
        // Size gap: TED(q, x) ≥ |sq − sx|, normalised by max(sq, sx).
        let gap = if sq < self.min_size {
            1.0 - sq as f64 / self.min_size as f64
        } else if sq > self.max_size {
            1.0 - self.max_size as f64 / sq as f64
        } else {
            0.0
        };
        triangle.max(gap)
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// `(entry index, TED to the parent pivot; NO_PARENT at the root)`.
        items: Vec<(u32, u32)>,
    },
    Inner {
        /// Entry index of the pivot (the pivot is itself a data point).
        pivot: u32,
        /// Entries with `TED(pivot, x) ≤ radius` go inside.
        radius: u32,
        /// `[inside, outside]` subtree descriptions.
        bands: [Band; 2],
        children: [Box<Node>; 2],
    },
}

impl Node {
    fn count(&self) -> u64 {
        match self {
            Node::Leaf { items } => items.len() as u64,
            Node::Inner { bands, .. } => 1 + u64::from(bands[0].count) + u64::from(bands[1].count),
        }
    }
}

/// Vantage-point tree over the normalised Zhang–Shasha tree edit metric.
#[derive(Debug, Clone)]
pub struct VpTree {
    entries: Vec<TreeEntry>,
    root: Option<Node>,
    leaf_cap: usize,
}

impl VpTree {
    /// Build over all current entries. Deterministic: pivots are taken in
    /// insertion order, radii at the median pivot distance.
    pub fn build(entries: Vec<TreeEntry>) -> VpTree {
        Self::with_leaf_cap(entries, LEAF_CAP)
    }

    /// Build with an explicit leaf capacity (tests use small caps to
    /// force deep trees out of small stores).
    pub fn with_leaf_cap(entries: Vec<TreeEntry>, leaf_cap: usize) -> VpTree {
        let leaf_cap = leaf_cap.max(1);
        let items: Vec<(u32, u32)> = (0..entries.len() as u32).map(|i| (i, NO_PARENT)).collect();
        let root = if items.is_empty() {
            None
        } else {
            Some(build_node(&entries, items, leaf_cap))
        };
        VpTree {
            entries,
            root,
            leaf_cap,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Incrementally insert a new record: descend by pivot distance,
    /// widening every band passed, and split the target leaf when it
    /// overflows. Bands only ever widen, so every bound that held before
    /// still holds.
    pub fn insert(&mut self, entry: TreeEntry) {
        let idx = self.entries.len() as u32;
        self.entries.push(entry);
        if self.root.is_none() {
            self.root = Some(Node::Leaf {
                items: vec![(idx, NO_PARENT)],
            });
            return;
        }
        let entries = &self.entries;
        let new = &entries[idx as usize];
        let leaf_cap = self.leaf_cap;
        let mut node = self.root.as_mut().expect("checked above");
        let mut parent_dist = NO_PARENT;
        loop {
            match node {
                Node::Leaf { items } => {
                    items.push((idx, parent_dist));
                    // Re-split an overflowing bucket only at power-of-two
                    // sizes: a bucket of pairwise-equidistant trees (e.g.
                    // thousands of logs of one template — identical after
                    // constant stripping) cannot split, and attempting on
                    // every insert would cost O(bucket) TED calls each
                    // time. Doubling amortises that to O(1) per insert
                    // while a splittable bucket still splits promptly.
                    if items.len() > leaf_cap && items.len().is_power_of_two() {
                        let taken = std::mem::take(items);
                        *node = build_node(entries, taken, leaf_cap);
                    }
                    break;
                }
                Node::Inner {
                    pivot,
                    radius,
                    bands,
                    children,
                } => {
                    let p = &entries[*pivot as usize];
                    let d = tree_edit_distance(&new.tree, &p.tree) as u32;
                    let side = usize::from(d > *radius);
                    bands[side].widen(d, new.shape.size, new.qid);
                    parent_dist = d;
                    node = &mut children[side];
                }
            }
        }
    }

    /// Exact k-nearest search under the normalised tree edit distance,
    /// over entries passing `accept` (liveness + ACL). Results carry
    /// `score = 1.0 − distance` and replicate the brute-force ordering
    /// (score descending, id ascending) float for float.
    pub fn knn(
        &self,
        probe: &TreeNode,
        probe_shape: &TreeShape,
        k: usize,
        mut accept: impl FnMut(u64) -> bool,
        stats: &MetricStats,
    ) -> Vec<ScoredHit> {
        let mut top = TopK::new(k);
        let Some(root) = &self.root else {
            return top.into_vec();
        };
        let sq = probe_shape.size;
        // Best-first frontier ordered by lower bound (FIFO on ties).
        let mut seq = 0u64;
        let mut heap: BinaryHeap<Reverse<Frontier<'_>>> = BinaryHeap::new();
        heap.push(Reverse(Frontier {
            bound: OrdF64(0.0),
            seq,
            node: root,
            parent_dist: NO_PARENT,
            min_qid: 0,
        }));
        // A candidate (or subtree) can only displace the current k-th
        // best when `1.0 − bound > worst.score`, or on an exact tie when
        // it can still win the ascending-id tie-break — i.e. when it
        // holds an id smaller than the k-th hit's. Same float expression
        // as the Combined sweep, plus the tie-plateau refinement.
        let admissible = |top: &TopK, bound: f64, min_qid: u64| match top.worst() {
            None => true,
            Some(w) => {
                let bound_score = 1.0 - bound;
                if bound_score < w.score {
                    false
                } else {
                    bound_score > w.score || min_qid < w.id.0
                }
            }
        };
        while let Some(Reverse(item)) = heap.pop() {
            let (bound, node, parent_dist) = (item.bound.0, item.node, item.parent_dist);
            if !admissible(&top, bound, item.min_qid) {
                if matches!(top.worst(), Some(w) if 1.0 - bound < w.score) {
                    // The frontier is bound-ordered from below: nothing
                    // left can enter the top k.
                    let mut skipped = node.count();
                    for Reverse(f) in heap.drain() {
                        skipped += f.node.count();
                    }
                    stats.add_hits(skipped);
                    break;
                }
                // Tie plateau with no winnable id: skip this subtree only.
                stats.add_hits(node.count());
                continue;
            }
            match node {
                Node::Leaf { items } => {
                    for &(eidx, d_pp) in items {
                        let e = &self.entries[eidx as usize];
                        if !accept(e.qid) {
                            continue;
                        }
                        let mut lb = sqlparse::normalized_tree_lower_bound(probe_shape, &e.shape);
                        if parent_dist != NO_PARENT && d_pp != NO_PARENT {
                            // Triangle via the leaf's parent pivot.
                            let t = parent_dist.abs_diff(d_pp);
                            lb = lb.max(normalized_from_ted(
                                t as usize,
                                sq as usize,
                                e.shape.size as usize,
                            ));
                        }
                        if !admissible(&top, lb, e.qid) {
                            stats.add_hits(1);
                            continue;
                        }
                        let d = sqlparse::normalized_tree_distance(probe, &e.tree);
                        stats.add_exact(1);
                        top.push(ScoredHit {
                            id: QueryId(e.qid),
                            score: 1.0 - d,
                        });
                    }
                }
                Node::Inner {
                    pivot,
                    radius: _,
                    bands,
                    children,
                } => {
                    let p = &self.entries[*pivot as usize];
                    let ted = tree_edit_distance(probe, &p.tree) as u32;
                    stats.add_exact(1);
                    if accept(p.qid) {
                        let d =
                            normalized_from_ted(ted as usize, sq as usize, p.shape.size as usize);
                        top.push(ScoredHit {
                            id: QueryId(p.qid),
                            score: 1.0 - d,
                        });
                    }
                    for side in 0..2 {
                        if bands[side].count == 0 {
                            continue;
                        }
                        let child_bound = bands[side].lower_bound(ted, sq).max(bound);
                        if !admissible(&top, child_bound, bands[side].min_qid) {
                            stats.add_hits(u64::from(bands[side].count));
                            continue;
                        }
                        seq += 1;
                        heap.push(Reverse(Frontier {
                            bound: OrdF64(child_bound),
                            seq,
                            node: &children[side],
                            parent_dist: ted,
                            min_qid: bands[side].min_qid,
                        }));
                    }
                }
            }
        }
        top.into_vec()
    }
}

/// Build a subtree from `(entry index, distance-to-parent-pivot)` pairs.
fn build_node(entries: &[TreeEntry], items: Vec<(u32, u32)>, leaf_cap: usize) -> Node {
    if items.len() <= leaf_cap {
        return Node::Leaf { items };
    }
    let (pivot, _) = items[0];
    let pt = &entries[pivot as usize];
    let mut dists: Vec<(u32, u32)> = items[1..]
        .iter()
        .map(|&(idx, _)| {
            let d = tree_edit_distance(&pt.tree, &entries[idx as usize].tree) as u32;
            (idx, d)
        })
        .collect();
    let mut sorted: Vec<u32> = dists.iter().map(|&(_, d)| d).collect();
    sorted.sort_unstable();
    // All entries equidistant from the pivot — the common case being a
    // popular template logged many times (identical constant-stripped
    // trees, all at distance 0): no radius can split them, so keep one
    // flat bucket instead of recursing one-pivot-at-a-time (which would
    // cost O(bucket²) DP calls and O(bucket) recursion depth).
    if sorted[0] == sorted[sorted.len() - 1] {
        return Node::Leaf { items };
    }
    // Median radius, pulled below the maximum when the upper half is one
    // value (e.g. [1, 5, 5]) so both sides are always non-empty and every
    // recursion strictly shrinks.
    let mut radius = sorted[sorted.len() / 2];
    if radius == sorted[sorted.len() - 1] {
        radius = sorted[sorted.partition_point(|&d| d < radius) - 1];
    }
    let mut bands = [Band::empty(), Band::empty()];
    let mut inside = Vec::new();
    let mut outside = Vec::new();
    for (idx, d) in dists.drain(..) {
        let side = usize::from(d > radius);
        let e = &entries[idx as usize];
        bands[side].widen(d, e.shape.size, e.qid);
        if side == 0 {
            inside.push((idx, d));
        } else {
            outside.push((idx, d));
        }
    }
    Node::Inner {
        pivot,
        radius,
        bands,
        children: [
            Box::new(build_node(entries, inside, leaf_cap)),
            Box::new(build_node(entries, outside, leaf_cap)),
        ],
    }
}

/// Total-order wrapper for finite f64 bounds (never NaN).
#[derive(Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("metric bounds are never NaN")
    }
}

/// One best-first frontier item: a subtree with its admission bound and
/// the probe's exact TED to the subtree's parent pivot.
#[derive(Debug)]
struct Frontier<'a> {
    bound: OrdF64,
    seq: u64,
    node: &'a Node,
    parent_dist: u32,
    /// Smallest qid in the subtree (tie-plateau pruning).
    min_qid: u64,
}

impl PartialEq for Frontier<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}

impl Eq for Frontier<'_> {}

impl PartialOrd for Frontier<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Frontier<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .cmp(&other.bound)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlparse::statement_tree;

    fn entry(qid: u64, sql: &str) -> TreeEntry {
        let tree = Arc::new(statement_tree(&sqlparse::strip_constants(
            &sqlparse::parse(sql).unwrap(),
        )));
        let shape = Arc::new(TreeShape::of(&tree));
        TreeEntry { qid, tree, shape }
    }

    fn pool() -> Vec<TreeEntry> {
        let sqls = [
            "SELECT * FROM WaterTemp WHERE temp < 18",
            "SELECT * FROM WaterTemp WHERE temp < 22",
            "SELECT lake FROM WaterTemp",
            "SELECT lake, temp FROM WaterTemp WHERE temp < 18 AND month = 7",
            "SELECT * FROM WaterSalinity WHERE salinity > 2",
            "SELECT city FROM CityLocations WHERE pop > 100000",
            "SELECT city, COUNT(*) FROM CityLocations GROUP BY city",
            "SELECT * FROM Lakes",
            "SELECT name FROM Lakes WHERE area > 50 ORDER BY name",
            "SELECT * FROM WaterTemp T, WaterSalinity S WHERE T.loc_x = S.loc_x",
            "SELECT * FROM WaterTemp WHERE temp IN (SELECT temp FROM WaterSalinity)",
            "SELECT month, MAX(temp) FROM WaterTemp GROUP BY month HAVING MAX(temp) > 20",
            "SELECT DISTINCT lake FROM WaterTemp LIMIT 3",
            "SELECT * FROM CityLocations",
            "SELECT pop FROM CityLocations WHERE pop < 500",
            "SELECT * FROM Lakes WHERE max_depth > 10 AND area > 5",
            "SELECT salinity FROM WaterSalinity",
            "SELECT * FROM WaterSalinity WHERE salinity <= 1",
            "SELECT lake FROM Lakes, WaterTemp WHERE Lakes.name = WaterTemp.lake",
            "SELECT temp, salinity FROM WaterTemp, WaterSalinity",
        ];
        sqls.iter()
            .enumerate()
            .map(|(i, s)| entry(i as u64, s))
            .collect()
    }

    fn brute(entries: &[TreeEntry], probe: &TreeEntry, k: usize) -> Vec<ScoredHit> {
        let mut top = TopK::new(k);
        for e in entries {
            top.push(ScoredHit {
                id: QueryId(e.qid),
                score: 1.0 - sqlparse::normalized_tree_distance(&probe.tree, &e.tree),
            });
        }
        top.into_vec()
    }

    /// A larger combinatorial pool (tables × predicates × shapes) so small
    /// leaf caps produce genuinely deep trees with non-trivial bands.
    fn big_pool() -> Vec<TreeEntry> {
        let tables = ["WaterTemp", "WaterSalinity", "CityLocations", "Lakes"];
        let cols = ["temp", "salinity", "pop", "area"];
        let mut out = Vec::new();
        let mut qid = 0u64;
        for (ti, t) in tables.iter().enumerate() {
            for (ci, c) in cols.iter().enumerate() {
                for op in ["<", ">", "="] {
                    out.push(entry(
                        qid,
                        &format!("SELECT * FROM {t} WHERE {c} {op} {ti}"),
                    ));
                    qid += 1;
                    out.push(entry(
                        qid,
                        &format!("SELECT {c} FROM {t} WHERE {c} {op} {ci} ORDER BY {c}"),
                    ));
                    qid += 1;
                    out.push(entry(
                        qid,
                        &format!(
                            "SELECT {c}, COUNT(*) FROM {t} GROUP BY {c} HAVING COUNT(*) {op} 2"
                        ),
                    ));
                    qid += 1;
                }
            }
        }
        out
    }

    #[test]
    fn knn_matches_brute_force_on_pool() {
        let entries = pool();
        for cap in [2, 4, LEAF_CAP] {
            let vp = VpTree::with_leaf_cap(entries.clone(), cap);
            let stats = MetricStats::default();
            for probe in &entries {
                for k in [1, 3, 7, 25] {
                    let got = vp.knn(&probe.tree, &probe.shape, k, |_| true, &stats);
                    assert_eq!(
                        got,
                        brute(&entries, probe, k),
                        "cap {cap} probe {} k {k}",
                        probe.qid
                    );
                }
            }
            // The bounds must actually fire on this workload.
            assert!(stats.bound_hits.load(Ordering::Relaxed) > 0);
        }
    }

    #[test]
    fn deep_tree_knn_matches_brute_force() {
        let entries = big_pool();
        assert!(entries.len() > 100);
        let vp = VpTree::with_leaf_cap(entries.clone(), 8);
        let stats = MetricStats::default();
        for probe in entries.iter().step_by(7) {
            for k in [1, 5, 20] {
                let got = vp.knn(&probe.tree, &probe.shape, k, |_| true, &stats);
                assert_eq!(got, brute(&entries, probe, k), "probe {} k {k}", probe.qid);
            }
        }
        assert!(stats.bound_hits.load(Ordering::Relaxed) > 0);
        assert!(stats.hit_rate() > 0.0);
        stats.reset();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.exact_evals.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn duplicate_heavy_store_builds_flat_buckets() {
        // Thousands of logs of one template are identical after constant
        // stripping — all pairwise TED 0. The build must keep them in one
        // bucket (no one-pivot-per-level recursion), and search must stay
        // exact with ascending-id ties.
        let mut entries: Vec<TreeEntry> = (0..300)
            .map(|i| entry(i, &format!("SELECT * FROM WaterTemp WHERE temp < {i}")))
            .collect();
        entries.push(entry(300, "SELECT city FROM CityLocations"));
        let mut vp = VpTree::with_leaf_cap(entries.clone(), 8);
        // Incremental inserts into the equidistant bucket stay cheap and
        // correct (power-of-two re-split attempts).
        for i in 301..340 {
            let e = entry(i, &format!("SELECT * FROM WaterTemp WHERE temp < {i}"));
            entries.push(e.clone());
            vp.insert(e);
        }
        let stats = MetricStats::default();
        for probe in [&entries[0], &entries[300], entries.last().unwrap()] {
            for k in [1, 5] {
                let got = vp.knn(&probe.tree, &probe.shape, k, |_| true, &stats);
                assert_eq!(got, brute(&entries, probe, k), "probe {} k {k}", probe.qid);
            }
        }
    }

    #[test]
    fn incremental_insert_stays_exact() {
        let entries = big_pool();
        // Build small, insert the rest incrementally — enough inserts to
        // split leaves and widen bands along real descent paths.
        let mut vp = VpTree::with_leaf_cap(entries[..10].to_vec(), 4);
        for e in &entries[10..] {
            vp.insert(e.clone());
        }
        let stats = MetricStats::default();
        for probe in entries.iter().step_by(11) {
            let got = vp.knn(&probe.tree, &probe.shape, 4, |_| true, &stats);
            assert_eq!(got, brute(&entries, probe, 4), "probe {}", probe.qid);
        }
    }

    #[test]
    fn accept_filter_and_empty_tree() {
        let entries = pool();
        let vp = VpTree::with_leaf_cap(entries.clone(), 4);
        let stats = MetricStats::default();
        let probe = &entries[0];
        // Filter to even qids only (tombstone/ACL stand-in).
        let got = vp.knn(&probe.tree, &probe.shape, 3, |q| q % 2 == 0, &stats);
        let even: Vec<TreeEntry> = entries.iter().filter(|e| e.qid % 2 == 0).cloned().collect();
        assert_eq!(got, brute(&even, probe, 3));

        let empty = VpTree::build(Vec::new());
        assert!(empty.is_empty());
        assert!(empty
            .knn(&probe.tree, &probe.shape, 3, |_| true, &stats)
            .is_empty());
    }
}
