//! The CQMS data model: queries as first-class managed objects.
//!
//! "A query is the primary data type in a CQMS" (§4.1). A [`QueryRecord`]
//! bundles everything the paper's data-model discussion calls for: the raw
//! text, the canonical parse tree, extracted syntactic features, runtime
//! features, a semantic output summary, session membership, annotations,
//! access control and maintenance state.

use crate::features::SyntacticFeatures;
use sqlparse::ast::Statement;
use sqlparse::EditOp;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
        pub struct $name(pub $inner);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a logged query (dense, assigned by the Query Storage).
    QueryId,
    u64
);
id_type!(
    /// Identifier of a CQMS user.
    UserId,
    u32
);
id_type!(
    /// Identifier of a query session (a tree of related queries, §4.1).
    SessionId,
    u64
);
id_type!(
    /// Identifier of a collaboration group (§2.4 access control).
    GroupId,
    u32
);

/// Who may see a logged query (paper §2.4: "restrict knowledge transfer to
/// only group members collaborating with each other").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Only the author.
    Private,
    /// The author's named group.
    Group(GroupId),
    /// Everyone.
    Public,
}

/// Runtime features captured by the profiler (§4.1: "result cardinality,
/// execution time, and the query execution plan").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeFeatures {
    /// Execution time in microseconds.
    pub elapsed_us: u64,
    /// Number of rows the query returned.
    pub cardinality: u64,
    /// Rows the executor touched while answering.
    pub rows_scanned: u64,
    /// The execution plan, rendered as one line.
    pub plan: String,
    /// Logical (catalog-clock) time of execution; compared against schema
    /// change timestamps by Query Maintenance (§4.4).
    pub logical_time: u64,
    /// Whether execution succeeded.
    pub success: bool,
    /// The error text when `success == false`.
    pub error: Option<String>,
}

/// Semantic output summary (§4.1 "Profiling query results"). Cell values are
/// stored in rendered form; query-by-data matches against them.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputSummary {
    /// Not captured (profiling depth below `Full`, or failed execution).
    None,
    /// The complete output (small results / expensive queries).
    Full {
        /// Output column names.
        columns: Vec<String>,
        /// Every output row, cells rendered as text.
        rows: Vec<Vec<String>>,
    },
    /// A reservoir sample of a larger output.
    Sample {
        /// Output column names.
        columns: Vec<String>,
        /// The sampled rows, cells rendered as text.
        rows: Vec<Vec<String>>,
        /// Cardinality of the full output the sample was drawn from.
        total_rows: u64,
    },
}

impl OutputSummary {
    /// Number of rows physically stored (0 for [`OutputSummary::None`]).
    pub fn row_count_stored(&self) -> usize {
        match self {
            OutputSummary::None => 0,
            OutputSummary::Full { rows, .. } | OutputSummary::Sample { rows, .. } => rows.len(),
        }
    }

    /// Is this summary exhaustive (query-by-data can trust exclusions)?
    pub fn is_exhaustive(&self) -> bool {
        matches!(self, OutputSummary::Full { .. })
    }

    /// Does any stored cell equal `needle` (case-insensitive)?
    pub fn contains_value(&self, needle: &str) -> bool {
        let rows = match self {
            OutputSummary::None => return false,
            OutputSummary::Full { rows, .. } | OutputSummary::Sample { rows, .. } => rows,
        };
        rows.iter()
            .any(|r| r.iter().any(|c| c.eq_ignore_ascii_case(needle)))
    }
}

/// A free-text annotation on a whole query or a fragment of it (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// Who wrote it.
    pub author: UserId,
    /// Trace-time seconds.
    pub at: u64,
    /// The annotation body.
    pub text: String,
    /// When set, the annotation targets this exact fragment of the SQL text
    /// (e.g. an outer-join clause the author wants to explain).
    pub fragment: Option<String>,
}

/// Maintenance status of a stored query (§4.4).
#[derive(Debug, Clone, PartialEq)]
pub enum Validity {
    /// Healthy: searchable, recommendable, re-executable.
    Valid,
    /// Possibly broken by schema evolution; kept but flagged.
    Flagged {
        /// Why maintenance flagged it.
        reason: String,
        /// Trace-time seconds of the flip.
        at: u64,
    },
    /// Automatically repaired; original text preserved.
    Repaired {
        /// The pre-repair SQL text.
        original_sql: String,
        /// Trace-time seconds of the repair.
        at: u64,
    },
    /// Confirmed broken and irreparable.
    Obsolete {
        /// Why it can no longer run.
        reason: String,
        /// Trace-time seconds of the verdict.
        at: u64,
    },
    /// Deleted by its owner or an administrator (tombstoned).
    Deleted,
}

impl Validity {
    /// Does this status keep the query in the live working set?
    pub fn is_usable(&self) -> bool {
        matches!(self, Validity::Valid | Validity::Repaired { .. })
    }
}

/// Relationship between two queries in the session graph (§4.1 lists
/// "temporal relations, modification relations and investigation relations").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `to` evolved from `from` within a session (Fig. 2 edges).
    Evolution,
    /// `to` investigates the output of `from`.
    Investigation,
}

/// One edge of the session graph, stored as a normalised edge relation.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEdge {
    /// The earlier query.
    pub from: QueryId,
    /// The query related to it.
    pub to: QueryId,
    /// Kind of relationship.
    pub kind: EdgeKind,
    /// The parse-tree diff labels shown on Fig. 2 edges.
    pub edits: Vec<EditOp>,
}

/// A fully profiled, logged query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Dense storage-assigned identifier.
    pub id: QueryId,
    /// The analyst who issued it.
    pub user: UserId,
    /// Trace-time seconds (wall-clock stand-in).
    pub ts: u64,
    /// The SQL exactly as typed.
    pub raw_sql: String,
    /// Parsed statement (None when the text failed to parse — the log still
    /// records the attempt; §2.3 correction mode needs those too).
    pub statement: Option<Statement>,
    /// The canonicalised re-print of `statement` (raw text when unparsed).
    pub canonical_sql: String,
    /// Fingerprint of the canonicalised statement.
    pub structure_fp: u64,
    /// Fingerprint of the constant-stripped template (popularity key).
    pub template_fp: u64,
    /// Extracted syntactic features (the Fig. 1 relations' source).
    pub features: SyntacticFeatures,
    /// Captured runtime features.
    pub runtime: RuntimeFeatures,
    /// Semantic output summary.
    pub summary: OutputSummary,
    /// Session this query belongs to.
    pub session: SessionId,
    /// Who may see it.
    pub visibility: Visibility,
    /// Attached free-text annotations, oldest first.
    pub annotations: Vec<Annotation>,
    /// Maintenance status.
    pub validity: Validity,
    /// Maintained quality score in [0, 1] (§4.4).
    pub quality: f64,
}

impl QueryRecord {
    /// Is this record alive and usable for search/recommendation?
    pub fn is_live(&self) -> bool {
        self.validity.is_usable()
    }

    /// The SQL to show/re-execute (repaired text when applicable).
    pub fn effective_sql(&self) -> &str {
        &self.raw_sql
    }

    /// One-line annotation digest for panel display (Fig. 3 right column).
    pub fn annotation_digest(&self) -> String {
        match self.annotations.first() {
            Some(a) => {
                let mut t = a.text.clone();
                if t.len() > 40 {
                    t.truncate(37);
                    t.push_str("...");
                }
                t
            }
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(QueryId(7).to_string(), "7");
        assert_eq!(SessionId(3).to_string(), "3");
    }

    #[test]
    fn validity_usability() {
        assert!(Validity::Valid.is_usable());
        assert!(Validity::Repaired {
            original_sql: "x".into(),
            at: 0
        }
        .is_usable());
        assert!(!Validity::Obsolete {
            reason: "r".into(),
            at: 0
        }
        .is_usable());
        assert!(!Validity::Deleted.is_usable());
    }

    #[test]
    fn summary_containment() {
        let s = OutputSummary::Full {
            columns: vec!["lake".into()],
            rows: vec![vec!["Lake Washington".into()], vec!["Green Lake".into()]],
        };
        assert!(s.contains_value("lake washington"));
        assert!(!s.contains_value("Lake Union"));
        assert!(s.is_exhaustive());
        assert_eq!(s.row_count_stored(), 2);
        assert!(!OutputSummary::None.contains_value("x"));
    }
}
