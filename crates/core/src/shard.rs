//! Sharded writes with cross-shard merged reads.
//!
//! After PR 6 every writer still serialised on the single `RwLock<Cqms>`
//! inside [`CqmsService`]. [`ShardedCqms`] splits the query log into N
//! **independently write-locked shards** — a full [`Cqms`] each, with its
//! own storage, feature engine, text indexes, WAL directory and background
//! miner — and routes every query to the shard owning its user. Writers on
//! different shards never contend; readers take only the brief per-shard
//! read locks (the per-shard read path is itself epoch-based, see
//! `relstore::Engine` and [`crate::indexreg`]).
//!
//! ## Shard map
//!
//! Routing is by **user hash**: `shard_of(user) = splitmix64(user) % N`.
//! Because sessions are per-user (§4.1), a user's whole session tree lives
//! on one shard, so session segmentation, completion history and edit
//! mining see exactly the traffic they would see unsharded.
//!
//! ## Global query ids (striping)
//!
//! Each shard assigns dense local ids; the deployment exposes
//! `global = local × N + shard`. The mapping is a pure function of the
//! shard count — nothing extra is persisted, so PR 6 WAL framing, snapshots
//! and recovery work unchanged: each shard recovers its own `shard-{i}/`
//! directory and the stripe falls back out. `locate` inverts it for
//! id-addressed mutations (annotate / ACL / delete).
//!
//! ## Cross-shard merged reads
//!
//! Per-shard search results arrive ordered `(score desc, local id asc)`,
//! which under striping is exactly `(score desc, global id asc)` within the
//! shard — so a k-way [`BinaryHeap`] merge over shard cursors reproduces
//! the *global* top-k, id-and-score exact, provided scores are
//! shard-placement independent. kNN distances depend only on record
//! content, and keyword TF-IDF is made placement-independent by scoring
//! every shard with the summed corpus statistics
//! ([`Cqms::keyword_corpus_stats`] → [`Cqms::search_keyword_with_corpus`]).
//!
//! ## Per-shard epoch lifecycle
//!
//! Miners, maintenance passes, WAL snapshots and structural-index
//! generations all stay per shard: each shard's background miner runs the
//! PR 5 collect → off-lock build → delta-replay publish dance against its
//! own registry, and the PR 6 snapshot/rotation machinery sees an ordinary
//! single-node WAL directory.
//!
//! ## One-snapshot merged reads
//!
//! Every cross-shard read first grabs all N shards' published
//! [`ReadSnapshot`]s up front — one momentary slot lock per shard — and
//! then merges entirely lock-free. Multi-pass protocols (keyword's
//! corpus-stats pass and scoring pass) run both passes against the *same*
//! snapshots, so writer churn between passes can no longer skew the
//! merged ranking.
//!
//! [`ShardedCqms::complete`] and [`ShardedCqms::recommend`] are **exact**:
//! completion merges each shard's summable [`CompletionStats`]
//! (association-rule co-occurrence counts plus popularity histograms) and
//! scores once from the global totals; recommendation merges the
//! per-shard kNN candidate pools and template-popularity histograms and
//! scores every candidate on its home shard with the global recency
//! anchor and popularity terms — both bit-identical to an unsharded
//! deployment over the union log.
//!
//! ## Caveats (documented, by design)
//!
//! * [`ShardedCqms::search_feature_sql`] runs the meta-query on every
//!   shard and concatenates rows (remapping a projected `qid` column to
//!   global ids); SQL-level aggregates are therefore computed per shard,
//!   not globally.
//! * Each shard owns an independent *data* engine built by the engine
//!   factory. DML routed through `run_query` mutates only the owning
//!   shard's copy — deployments whose analysts write the underlying data
//!   should keep the data tier external (the paper's Fig. 4 bottom box)
//!   and treat these engines as catalogs for validation/profiling.

use crate::assist::completion::{CompletionStats, Suggestion};
use crate::assist::correction::{Correction, RepairSuggestion};
use crate::assist::recommend::{sort_panel_rows, PanelRow};
use crate::config::CqmsConfig;
use crate::error::CqmsError;
use crate::faults;
use crate::maintenance::{MaintenanceReport, RefreshReport};
use crate::metaquery::{ScoredHit, TreePattern};
use crate::miner::assoc::AssocRule;
use crate::model::{GroupId, QueryId, UserId, Visibility};
use crate::profiler::ProfiledQuery;
use crate::server::{Cqms, MinerReport};
use crate::service::{CqmsService, IngestItem};
use crate::similarity::DistanceKind;
use crate::snapshot::ReadSnapshot;
use crate::wal::RecoveryReport;
use parking_lot::{Mutex, RwLock};
use relstore::Engine;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The per-shard probe closure [`ShardedCqms`] fans out under a deadline:
/// shared across the detached worker threads, one call per shard.
type ShardProbe<T> = Arc<dyn Fn(&CqmsService, usize) -> T + Send + Sync>;

/// A cross-shard read answered under a deadline budget: the merged value,
/// whether any shard missed the deadline, and which ones did. See
/// [`ShardedCqms::similar_queries_deadline`] for the exactness guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialResult<T> {
    /// The merged result over the shards that answered in time.
    pub value: T,
    /// Did at least one shard miss the deadline (or sit degraded)?
    pub partial: bool,
    /// The shards whose answers were not included, ascending.
    pub lagging_shards: Vec<usize>,
}

/// Lifecycle state of one shard, as reported by [`ShardedCqms::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Healthy: serving reads and accepting writes.
    Serving,
    /// Opened degraded: running empty, write-fenced, awaiting repair.
    Degraded,
    /// A repair attempt is recovering this shard's directory right now
    /// (still write-fenced; healthy shards are unaffected).
    Repairing,
}

/// One row of [`ShardedCqms::health`]: a shard's lifecycle state and how
/// many repair attempts it has consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// The shard index.
    pub shard: usize,
    /// Current lifecycle state. A shard whose repair budget is exhausted
    /// reports [`ShardState::Degraded`] (it stays fenced until restart).
    pub state: ShardState,
    /// Repair attempts made so far (`0` for never-degraded shards).
    pub repair_attempts: u64,
}

/// Mutable degraded-shard bookkeeping, shared between every deployment
/// handle and the repair supervisor behind one lock.
struct DegradedState {
    /// Write-fenced shards, ascending (degraded or mid-repair).
    fenced: Vec<usize>,
    /// Subset of `fenced` with a repair attempt in flight.
    repairing: Vec<usize>,
    /// Shards whose [`CqmsConfig::repair_max_attempts`] budget ran out —
    /// they stay fenced until restart.
    exhausted: Vec<usize>,
    /// Per-shard repair attempts (empty for pure-RAM deployments).
    attempts: Vec<u64>,
    /// Per-shard recovery outcome of the durable open or the latest
    /// repair attempt (empty for pure-RAM deployments).
    recovery: Vec<Result<RecoveryReport, CqmsError>>,
}

/// Everything a repair attempt needs to re-open a shard, captured once at
/// [`ShardedCqms::open`]: the deployment directory, the config, and the
/// engine factory (behind a lock — factories are `FnMut`).
struct RepairContext {
    dir: PathBuf,
    config: CqmsConfig,
    factory: Mutex<Box<dyn FnMut() -> Engine + Send>>,
}

/// The background repair supervisor's thread handle. Mirrors
/// [`crate::server::BackgroundMiner`]: `stop` (and plain drop) signals
/// the loop and joins, returning how many shards it promoted.
struct BackgroundRepairer {
    stop_tx: SyncSender<()>,
    handle: Option<JoinHandle<usize>>,
}

impl BackgroundRepairer {
    fn stop(mut self) -> usize {
        self.join()
    }

    fn join(&mut self) -> usize {
        // The receiver may already be gone (loop exited); that's fine.
        let _ = self.stop_tx.send(());
        self.handle
            .take()
            .map(|h| h.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for BackgroundRepairer {
    fn drop(&mut self) {
        self.join();
    }
}

/// A CQMS deployment sharded by user hash into independently write-locked
/// [`CqmsService`]s, with cross-shard reads merged exactly. Cloning is
/// cheap (per-shard `Arc`s plus one shared clock).
#[derive(Clone)]
pub struct ShardedCqms {
    shards: Vec<CqmsService>,
    /// Global trace clock: `run_query` ticks it by 30 s, explicit
    /// timestamps raise it monotonically (`fetch_max`). Per-shard clocks
    /// trail it, which is fine — every ingest carries an explicit global
    /// timestamp down to its shard.
    clock: Arc<AtomicU64>,
    /// Degraded/repair bookkeeping. Healthy-path readers only take the
    /// read lock for a `Vec::contains` on the write fence.
    state: Arc<RwLock<DegradedState>>,
    /// Present only for durable deployments ([`ShardedCqms::open`]):
    /// what a repair attempt needs to re-open a shard directory.
    repair_ctx: Option<Arc<RepairContext>>,
    /// The background repair supervisor, when running.
    repairer: Arc<Mutex<Option<BackgroundRepairer>>>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ShardedCqms {
    /// Build a pure-RAM sharded deployment. `config.shards` (≥ 1) shards
    /// are created, each wrapping one engine from `engine_factory` (every
    /// shard needs its own copy of the data tier's catalog).
    pub fn new(mut engine_factory: impl FnMut() -> Engine, config: CqmsConfig) -> Self {
        let n = config.shards.max(1);
        let shards = (0..n)
            .map(|_| CqmsService::new(Cqms::new(engine_factory(), config.clone())))
            .collect();
        ShardedCqms {
            shards,
            clock: Arc::new(AtomicU64::new(0)),
            state: Arc::new(RwLock::new(DegradedState {
                fenced: Vec::new(),
                repairing: Vec::new(),
                exhausted: Vec::new(),
                attempts: Vec::new(),
                recovery: Vec::new(),
            })),
            repair_ctx: None,
            repairer: Arc::new(Mutex::new(None)),
        }
    }

    /// Open (or create) a *durable* sharded deployment under `dir`: shard
    /// `i` recovers `dir/shard-{i}/` with the ordinary single-node WAL
    /// machinery (see [`Cqms::open`]); the global clock resumes past every
    /// shard's recovered high-water mark. The shard count must match
    /// across restarts — the id stripe is a function of it.
    ///
    /// A shard whose directory is corrupt or unreadable fails the whole
    /// open with [`CqmsError::ShardOpen`] by default. With
    /// [`CqmsConfig::open_degraded`] set, the deployment opens anyway:
    /// the broken shard runs **empty and write-rejecting**
    /// ([`CqmsError::ShardUnavailable`]) while healthy shards serve
    /// normally, and the per-shard outcome — recovery report or open
    /// error — is available from [`ShardedCqms::shard_recovery`]. Reads
    /// silently exclude the degraded shard's (inaccessible) records; use
    /// [`ShardedCqms::degraded_shards`] / [`ShardedCqms::health`] to
    /// surface that to clients.
    ///
    /// Degraded shards are not permanent: when any shard opens degraded
    /// and [`CqmsConfig::repair_interval_ms`] is non-zero, a background
    /// **repair supervisor** starts automatically and re-attempts
    /// recovery off-lock until every shard is promoted back to serving
    /// (or its [`CqmsConfig::repair_max_attempts`] budget runs out). Set
    /// the interval to `0` for manual control via
    /// [`ShardedCqms::run_repair_epoch`].
    pub fn open(
        mut engine_factory: impl FnMut() -> Engine + Send + 'static,
        config: CqmsConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, CqmsError> {
        let n = config.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        let mut clock = 0u64;
        let mut degraded = Vec::new();
        let mut recovery = Vec::with_capacity(n);
        for i in 0..n {
            let shard_dir = dir.as_ref().join(format!("shard-{i}"));
            match Cqms::open(engine_factory(), config.clone(), shard_dir) {
                Ok(cqms) => {
                    clock = clock.max(cqms.now());
                    recovery.push(Ok(cqms.recovery().cloned().unwrap_or_default()));
                    shards.push(CqmsService::new(cqms));
                }
                Err(e) => {
                    let err = CqmsError::ShardOpen {
                        shard: i,
                        detail: e.to_string(),
                    };
                    if !config.open_degraded {
                        return Err(err);
                    }
                    // Keep the slot (the id stripe and user routing are
                    // functions of the shard *count*) but leave it empty
                    // and mark it: writes bounce, reads see nothing.
                    degraded.push(i);
                    recovery.push(Err(err));
                    shards.push(CqmsService::new(Cqms::new(
                        engine_factory(),
                        config.clone(),
                    )));
                }
            }
        }
        let any_degraded = !degraded.is_empty();
        let out = ShardedCqms {
            shards,
            clock: Arc::new(AtomicU64::new(clock)),
            state: Arc::new(RwLock::new(DegradedState {
                fenced: degraded,
                repairing: Vec::new(),
                exhausted: Vec::new(),
                attempts: vec![0; n],
                recovery,
            })),
            repair_ctx: Some(Arc::new(RepairContext {
                dir: dir.as_ref().to_path_buf(),
                config: config.clone(),
                factory: Mutex::new(Box::new(engine_factory)),
            })),
            repairer: Arc::new(Mutex::new(None)),
        };
        if any_degraded && config.repair_interval_ms > 0 {
            out.start_repair(Duration::from_millis(config.repair_interval_ms));
        }
        Ok(out)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `user`'s queries.
    pub fn shard_of(&self, user: UserId) -> usize {
        (splitmix64(user.0 as u64) % self.shards.len() as u64) as usize
    }

    /// The per-shard service handles (tests, benches, operators).
    pub fn shards(&self) -> &[CqmsService] {
        &self.shards
    }

    /// Shards currently degraded — write-fenced, awaiting (or beyond)
    /// repair — ascending; empty when every shard is serving. Shrinks as
    /// the repair supervisor promotes shards back.
    pub fn degraded_shards(&self) -> Vec<usize> {
        self.state.read().fenced.clone()
    }

    /// Per-shard recovery outcome of the durable open or the latest
    /// repair attempt: the shard's [`RecoveryReport`], or the
    /// [`CqmsError::ShardOpen`] that degraded it. Empty for pure-RAM
    /// deployments built with [`ShardedCqms::new`].
    pub fn shard_recovery(&self) -> Vec<Result<RecoveryReport, CqmsError>> {
        self.state.read().recovery.clone()
    }

    /// Lifecycle state of every shard, ascending by shard index.
    pub fn health(&self) -> Vec<ShardHealth> {
        let st = self.state.read();
        (0..self.shards.len())
            .map(|i| ShardHealth {
                shard: i,
                state: if st.repairing.contains(&i) {
                    ShardState::Repairing
                } else if st.fenced.contains(&i) {
                    ShardState::Degraded
                } else {
                    ShardState::Serving
                },
                repair_attempts: st.attempts.get(i).copied().unwrap_or(0),
            })
            .collect()
    }

    fn check_writable(&self, shard: usize) -> Result<(), CqmsError> {
        if self.state.read().fenced.contains(&shard) {
            Err(CqmsError::ShardUnavailable { shard })
        } else {
            Ok(())
        }
    }

    /// Stripe a shard-local id into the global id space.
    pub fn globalize(&self, shard: usize, local: QueryId) -> QueryId {
        QueryId(local.0 * self.shards.len() as u64 + shard as u64)
    }

    /// Invert [`ShardedCqms::globalize`]: which shard holds a global id,
    /// and under which local id.
    pub fn locate(&self, global: QueryId) -> (usize, QueryId) {
        let n = self.shards.len() as u64;
        ((global.0 % n) as usize, QueryId(global.0 / n))
    }

    /// Current global trace time.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(30, Ordering::SeqCst) + 30
    }

    fn observe(&self, ts: u64) {
        self.clock.fetch_max(ts, Ordering::SeqCst);
    }

    // ------------------------------------------------------------------
    // Admin (broadcast: every shard keeps an identical directory)
    // ------------------------------------------------------------------

    /// Register (or look up) a user by name — broadcast, so every shard's
    /// directory assigns the same dense id and ACL checks agree everywhere.
    pub fn register_user(&self, name: &str) -> UserId {
        let ids: Vec<UserId> = self.shards.iter().map(|s| s.register_user(name)).collect();
        debug_assert!(
            ids.windows(2).all(|w| w[0] == w[1]),
            "shard directories diverged registering {name:?}"
        );
        ids[0]
    }

    /// Create a collaboration group on every shard.
    pub fn create_group(&self, name: &str) -> GroupId {
        let ids: Vec<GroupId> = self.shards.iter().map(|s| s.create_group(name)).collect();
        debug_assert!(ids.windows(2).all(|w| w[0] == w[1]));
        ids[0]
    }

    /// Add a user to a group on every shard.
    pub fn join_group(&self, user: UserId, group: GroupId) -> Result<(), CqmsError> {
        self.shards
            .iter()
            .try_for_each(|s| s.join_group(user, group))
    }

    // ------------------------------------------------------------------
    // Write path (routed to the owning shard; only that shard locks)
    // ------------------------------------------------------------------

    /// Run + profile one query at the global clock (ticked by 30 s).
    pub fn run_query(&self, user: UserId, sql: &str) -> Result<ProfiledQuery, CqmsError> {
        let ts = self.tick();
        self.route_query(user, sql, ts)
    }

    /// Run + profile one query at an explicit trace time (the global clock
    /// never regresses: it advances to `max(now, ts)`).
    pub fn run_query_at(
        &self,
        user: UserId,
        sql: &str,
        ts: u64,
    ) -> Result<ProfiledQuery, CqmsError> {
        self.observe(ts);
        self.route_query(user, sql, ts)
    }

    fn route_query(&self, user: UserId, sql: &str, ts: u64) -> Result<ProfiledQuery, CqmsError> {
        let shard = self.shard_of(user);
        self.check_writable(shard)?;
        let mut out = self.shards[shard].run_query_at(user, sql, ts)?;
        out.id = self.globalize(shard, out.id);
        Ok(out)
    }

    /// Ingest a batch: items are timestamped against the global clock in
    /// order, partitioned by owning shard, ingested with **one write-lock
    /// acquisition and one WAL flush per touched shard**, and the results
    /// reassembled in input order with global ids. Shards not named by the
    /// batch are never locked.
    pub fn ingest_batch(&self, items: &[IngestItem]) -> Vec<Result<QueryId, CqmsError>> {
        if items.is_empty() {
            return Vec::new();
        }
        // Resolve every timestamp first so the batch observes one coherent
        // global order regardless of per-shard scheduling.
        let mut per_shard: Vec<(Vec<usize>, Vec<IngestItem>)> =
            vec![(Vec::new(), Vec::new()); self.shards.len()];
        for (pos, item) in items.iter().enumerate() {
            let ts = match item.ts {
                Some(ts) => {
                    self.observe(ts);
                    ts
                }
                None => self.tick(),
            };
            let shard = self.shard_of(item.user);
            per_shard[shard].0.push(pos);
            per_shard[shard]
                .1
                .push(IngestItem::at(item.user, item.sql.clone(), ts));
        }
        let mut out: Vec<Result<QueryId, CqmsError>> = items
            .iter()
            .map(|_| Err(CqmsError::NotFound("unrouted batch item".into())))
            .collect();
        for (shard, (positions, batch)) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            if let Err(e) = self.check_writable(shard) {
                for pos in positions {
                    out[pos] = Err(e.clone());
                }
                continue;
            }
            let results = self.shards[shard].ingest_batch(&batch);
            for (pos, res) in positions.into_iter().zip(results) {
                out[pos] = res.map(|local| self.globalize(shard, local));
            }
        }
        out
    }

    /// Attach an annotation (routed by the global id's stripe).
    pub fn annotate(
        &self,
        actor: UserId,
        id: QueryId,
        text: &str,
        fragment: Option<&str>,
    ) -> Result<(), CqmsError> {
        let (shard, local) = self.locate(id);
        self.check_writable(shard)?;
        self.shards[shard].annotate(actor, local, text, fragment)
    }

    /// Change a query's ACL.
    pub fn set_visibility(
        &self,
        actor: UserId,
        id: QueryId,
        visibility: Visibility,
    ) -> Result<(), CqmsError> {
        let (shard, local) = self.locate(id);
        self.check_writable(shard)?;
        self.shards[shard].set_visibility(actor, local, visibility)
    }

    /// Tombstone a query.
    pub fn delete_query(&self, actor: UserId, id: QueryId) -> Result<(), CqmsError> {
        let (shard, local) = self.locate(id);
        self.check_writable(shard)?;
        self.shards[shard].delete_query(actor, local)
    }

    // ------------------------------------------------------------------
    // Read path (one snapshot per shard + exact lock-free k-way merges)
    // ------------------------------------------------------------------

    /// Grab every shard's published [`ReadSnapshot`] up front — one
    /// momentary slot lock per shard, in shard order, no ordering hazard
    /// (snapshots are immutable) — so the whole merged read then runs
    /// lock-free against one coherent per-shard cut.
    fn snapshots(&self) -> Vec<Arc<ReadSnapshot>> {
        self.shards.iter().map(CqmsService::snapshot).collect()
    }

    /// Live queries across all shards.
    pub fn live_count(&self) -> usize {
        self.snapshots().iter().map(|s| s.live_count()).sum()
    }

    /// TF-IDF keyword search, scored with **global** corpus statistics so
    /// the merged ranking is identical to an unsharded deployment's. Both
    /// passes run against the same per-shard snapshots, so concurrent
    /// writers cannot skew the IDF corpus between counting and scoring.
    pub fn search_keyword(&self, user: UserId, query: &str, k: usize) -> Vec<ScoredHit> {
        let snaps = self.snapshots();
        // Pass 1: sum each shard's live-doc count and per-term df.
        let mut total_docs = 0u64;
        let mut df: HashMap<String, u64> = HashMap::new();
        for snap in &snaps {
            let (n, local_df) = snap.keyword_corpus_stats(query);
            total_docs += n;
            for (term, d) in local_df {
                *df.entry(term).or_insert(0) += d;
            }
        }
        // Pass 2: per-shard top-k under the global stats, then merge.
        let per_shard: Vec<Vec<ScoredHit>> = snaps
            .iter()
            .enumerate()
            .map(|(i, snap)| {
                snap.search_keyword_with_corpus(user, query, k, total_docs, &df)
                    .into_iter()
                    .map(|h| ScoredHit {
                        id: self.globalize(i, h.id),
                        score: h.score,
                    })
                    .collect()
            })
            .collect();
        merge_scored(per_shard, k)
    }

    /// Exact substring search; the merged output is ascending by global id.
    pub fn search_substring(&self, user: UserId, needle: &str) -> Vec<QueryId> {
        let mut out: Vec<QueryId> = self
            .snapshots()
            .iter()
            .enumerate()
            .flat_map(|(i, snap)| {
                snap.search_substring(user, needle)
                    .into_iter()
                    .map(move |id| QueryId(id.0 * self.shards.len() as u64 + i as u64))
            })
            .collect();
        out.sort();
        out
    }

    /// Structural search by parse-tree pattern (ascending global ids).
    pub fn search_parse_tree(&self, user: UserId, pattern: &TreePattern) -> Vec<QueryId> {
        let mut out: Vec<QueryId> = self
            .snapshots()
            .iter()
            .enumerate()
            .flat_map(|(i, snap)| {
                snap.search_parse_tree(user, pattern)
                    .into_iter()
                    .map(move |id| QueryId(id.0 * self.shards.len() as u64 + i as u64))
            })
            .collect();
        out.sort();
        out
    }

    /// Query-by-data across shards (ascending global ids). With
    /// `reexecute` the sampled candidates need each shard's live data
    /// engine, so that variant stays on the services' lock-retained path.
    pub fn search_by_data(
        &self,
        user: UserId,
        include: &[&str],
        exclude: &[&str],
        reexecute: bool,
    ) -> Vec<QueryId> {
        let n = self.shards.len() as u64;
        let globalized = |i: usize, ids: Vec<QueryId>| {
            ids.into_iter()
                .map(move |id| QueryId(id.0 * n + i as u64))
                .collect::<Vec<QueryId>>()
        };
        let mut out: Vec<QueryId> = if reexecute {
            self.shards
                .iter()
                .enumerate()
                .flat_map(|(i, s)| globalized(i, s.search_by_data(user, include, exclude, true)))
                .collect()
        } else {
            self.snapshots()
                .iter()
                .enumerate()
                .flat_map(|(i, snap)| globalized(i, snap.search_by_data(user, include, exclude)))
                .collect()
        };
        out.sort();
        out
    }

    /// kNN similarity search: per-shard bound-ordered sweeps, merged by a
    /// heap over shard cursors — id-and-score equal to an unsharded scan
    /// (distances depend only on record content).
    pub fn similar_queries(
        &self,
        user: UserId,
        sql: &str,
        k: usize,
        metric: DistanceKind,
    ) -> Result<Vec<ScoredHit>, CqmsError> {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for (i, snap) in self.snapshots().iter().enumerate() {
            let hits = snap
                .similar_queries(user, sql, k, metric)?
                .into_iter()
                .map(|h| ScoredHit {
                    id: self.globalize(i, h.id),
                    score: h.score,
                })
                .collect();
            per_shard.push(hits);
        }
        Ok(merge_scored(per_shard, k))
    }

    // ------------------------------------------------------------------
    // Deadline reads (graceful degradation under slow shards)
    // ------------------------------------------------------------------

    /// Fan a read over `idxs`, collecting each shard's answer until
    /// `deadline`. Shards that miss it are abandoned (their detached
    /// worker threads finish against a dropped channel) and reported as
    /// lagging. Returns per-shard answers indexed by shard id.
    fn fanout_until<T: Send + 'static>(
        &self,
        idxs: &[usize],
        deadline: Instant,
        f: ShardProbe<T>,
    ) -> (Vec<Option<T>>, Vec<usize>) {
        let (tx, rx) = std::sync::mpsc::channel();
        for &i in idxs {
            let tx = tx.clone();
            let svc = self.shards[i].clone();
            let f = f.clone();
            // Detached on purpose: joining would wait out the very
            // slowness the deadline exists to bound. The worker holds its
            // own service clone; a post-deadline send just fails.
            std::thread::spawn(move || {
                let out = f(&svc, i);
                let _ = tx.send((i, out));
            });
        }
        drop(tx);
        let mut results: Vec<Option<T>> = (0..self.shards.len()).map(|_| None).collect();
        let mut pending = idxs.len();
        while pending > 0 {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(remaining) {
                Ok((i, out)) => {
                    results[i] = Some(out);
                    pending -= 1;
                }
                Err(_) => break, // deadline (or every worker already gone)
            }
        }
        let lagging = idxs
            .iter()
            .copied()
            .filter(|&i| results[i].is_none())
            .collect();
        (results, lagging)
    }

    /// [`ShardedCqms::similar_queries`] under a deadline budget: shards
    /// are probed in parallel and the merge runs over those that answered
    /// within `budget`; the rest are reported in
    /// [`PartialResult::lagging_shards`] instead of blocking the caller.
    ///
    /// **Exactness**: kNN scores depend only on record content, so the
    /// partial value is precisely the full merged top-k *restricted to
    /// the answering shards* — equivalently, the full answer with the
    /// lagging shards' hits deleted and the next-best answering-shard
    /// hits pulled up. In particular the full top-k filtered to answering
    /// shards is a prefix of the partial value (pinned by
    /// `tests/faults.rs`). With no lagging shard the result is
    /// bit-identical to the undeadlined call.
    pub fn similar_queries_deadline(
        &self,
        user: UserId,
        sql: &str,
        k: usize,
        metric: DistanceKind,
        budget: Duration,
    ) -> Result<PartialResult<Vec<ScoredHit>>, CqmsError> {
        let deadline = Instant::now() + budget;
        let all: Vec<usize> = (0..self.shards.len()).collect();
        let sql = sql.to_string();
        let (results, lagging) = self.fanout_until(
            &all,
            deadline,
            Arc::new(move |svc: &CqmsService, _| svc.similar_queries(user, &sql, k, metric)),
        );
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for (i, res) in results.into_iter().enumerate() {
            let Some(res) = res else { continue };
            // A real per-shard error (e.g. unparsable seed SQL) is the
            // same on every shard — propagate it rather than degrade.
            let hits: Vec<ScoredHit> = res?
                .into_iter()
                .map(|h| ScoredHit {
                    id: self.globalize(i, h.id),
                    score: h.score,
                })
                .collect();
            per_shard.push(hits);
        }
        Ok(PartialResult {
            value: merge_scored(per_shard, k),
            partial: !lagging.is_empty(),
            lagging_shards: lagging,
        })
    }

    /// [`ShardedCqms::search_substring`] under a deadline budget: the
    /// value is exactly the full answer minus the lagging shards' ids
    /// (substring matching has no cross-shard scoring), ascending by
    /// global id.
    pub fn search_substring_deadline(
        &self,
        user: UserId,
        needle: &str,
        budget: Duration,
    ) -> PartialResult<Vec<QueryId>> {
        let deadline = Instant::now() + budget;
        let all: Vec<usize> = (0..self.shards.len()).collect();
        let needle = needle.to_string();
        let (results, lagging) = self.fanout_until(
            &all,
            deadline,
            Arc::new(move |svc: &CqmsService, _| svc.search_substring(user, &needle)),
        );
        let n = self.shards.len() as u64;
        let mut out: Vec<QueryId> = results
            .into_iter()
            .enumerate()
            .flat_map(|(i, ids)| {
                ids.unwrap_or_default()
                    .into_iter()
                    .map(move |id| QueryId(id.0 * n + i as u64))
            })
            .collect();
        out.sort();
        PartialResult {
            value: out,
            partial: !lagging.is_empty(),
            lagging_shards: lagging,
        }
    }

    /// [`ShardedCqms::search_keyword`] under a deadline budget. Both
    /// passes of the global-stats protocol run under the same deadline:
    /// corpus statistics are summed over the shards that answered pass 1
    /// in time, and pass 2 probes only those shards with the remaining
    /// budget. **Weaker guarantee than kNN/substring**: when shards lag,
    /// the IDF corpus is the answering shards' corpus, so surviving
    /// scores can differ from the unsharded run (ranking within the
    /// answering corpus stays exact, and with no lagging shard the result
    /// is bit-identical to the undeadlined call).
    pub fn search_keyword_deadline(
        &self,
        user: UserId,
        query: &str,
        k: usize,
        budget: Duration,
    ) -> PartialResult<Vec<ScoredHit>> {
        let deadline = Instant::now() + budget;
        let all: Vec<usize> = (0..self.shards.len()).collect();
        // Pass 1: each worker pins its shard's snapshot (the only moment
        // it touches the shard at all — the `shard.read` failpoints fire
        // there) and counts the corpus on it.
        let q1 = query.to_string();
        let (stats, mut lagging) = self.fanout_until(
            &all,
            deadline,
            Arc::new(move |svc: &CqmsService, _| {
                let snap = svc.snapshot();
                let stats = snap.keyword_corpus_stats(&q1);
                (snap, stats)
            }),
        );
        let mut total_docs = 0u64;
        let mut df: HashMap<String, u64> = HashMap::new();
        let mut answered: Vec<usize> = Vec::new();
        let mut snaps: Vec<Option<Arc<ReadSnapshot>>> =
            (0..self.shards.len()).map(|_| None).collect();
        for (i, s) in stats.into_iter().enumerate() {
            let Some((snap, (n, local_df))) = s else {
                continue;
            };
            answered.push(i);
            snaps[i] = Some(snap);
            total_docs += n;
            for (term, d) in local_df {
                *df.entry(term).or_insert(0) += d;
            }
        }
        // Pass 2: top-k under the answering corpus, remaining budget only,
        // scored on the *same* snapshots pass 1 counted — writer churn
        // between the passes cannot skew the IDF corpus.
        let q2 = query.to_string();
        let df = Arc::new(df);
        let snaps = Arc::new(snaps);
        let (results, lagging2) = self.fanout_until(
            &answered,
            deadline,
            Arc::new(move |_svc: &CqmsService, i| {
                let snap = snaps[i].as_ref().expect("answered shard pinned a snapshot");
                snap.search_keyword_with_corpus(user, &q2, k, total_docs, &df)
            }),
        );
        lagging.extend(lagging2);
        lagging.sort_unstable();
        lagging.dedup();
        let per_shard: Vec<Vec<ScoredHit>> = results
            .into_iter()
            .enumerate()
            .map(|(i, hits)| {
                hits.unwrap_or_default()
                    .into_iter()
                    .map(|h| ScoredHit {
                        id: self.globalize(i, h.id),
                        score: h.score,
                    })
                    .collect()
            })
            .collect();
        PartialResult {
            value: merge_scored(per_shard, k),
            partial: !lagging.is_empty(),
            lagging_shards: lagging,
        }
    }

    /// SQL meta-query over the feature relations, run on every shard with
    /// rows concatenated in shard order. A projected `qid` column is
    /// remapped to global ids; SQL aggregates are per-shard (see module
    /// docs).
    pub fn search_feature_sql(
        &self,
        user: UserId,
        sql: &str,
    ) -> Result<relstore::QueryResult, CqmsError> {
        let mut merged: Option<relstore::QueryResult> = None;
        for (i, s) in self.shards.iter().enumerate() {
            let mut r = s.search_feature_sql(user, sql)?;
            let qid_cols: Vec<usize> = r
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.eq_ignore_ascii_case("qid"))
                .map(|(ci, _)| ci)
                .collect();
            for row in &mut r.rows {
                for &ci in &qid_cols {
                    if let relstore::Value::Int(v) = row[ci] {
                        if v >= 0 {
                            row[ci] = relstore::Value::Int(v * self.shards.len() as i64 + i as i64);
                        }
                    }
                }
            }
            match &mut merged {
                None => merged = Some(r),
                Some(m) => m.rows.extend(r.rows),
            }
        }
        Ok(merged.expect("at least one shard"))
    }

    /// Completions scored from **globally merged** statistics: every
    /// shard contributes its summable [`CompletionStats`] — association
    /// co-occurrence counts, table/attribute popularity, predicate
    /// histograms — and the suggestions are scored once from the totals.
    /// Bit-identical to an unsharded deployment over the union log (shard
    /// catalogs are identical by construction, so any shard can score).
    pub fn complete(&self, user: UserId, partial_sql: &str, k: usize) -> Vec<Suggestion> {
        let _ = user; // visibility does not gate completion stats
        let snaps = self.snapshots();
        let mut merged = CompletionStats::default();
        for snap in &snaps {
            merged.merge(&snap.completion_stats(partial_sql));
        }
        match snaps.first() {
            Some(snap) => snap.complete_with_stats(partial_sql, k, &merged),
            None => Vec::new(),
        }
    }

    /// The recommendation panel merged across shards **exactly**: the
    /// per-shard kNN candidate pools are heap-merged into the global pool
    /// a single instance would sweep, then every candidate is scored on
    /// its home shard with the *global* recency anchor (max trace time)
    /// and template-popularity terms, so a candidate's rank score is
    /// placement-independent. Row-for-row identical to an unsharded
    /// deployment over the union log, up to the usual top-k tie caveat:
    /// kNN-score ties at the `3k` candidate-pool boundary cut by id, and
    /// the two deployments' id spaces order tied records differently.
    pub fn recommend(
        &self,
        user: UserId,
        seed_sql: &str,
        k: usize,
    ) -> Result<Vec<PanelRow>, CqmsError> {
        let snaps = self.snapshots();
        // Global ranking terms: summed template histogram, max trace time.
        let mut pop: HashMap<u64, u32> = HashMap::new();
        let mut now_ts = 0u64;
        for snap in &snaps {
            now_ts = now_ts.max(snap.panel_now_ts());
            for (fp, c) in snap.template_histogram() {
                *pop.entry(fp).or_insert(0) += c;
            }
        }
        let max_pop = pop.values().copied().max().unwrap_or(0);
        // The candidate pool: merged per-shard top-m. A shard's top-m
        // union contains the global top-m, and the heap merge uses the
        // executor's own (score desc, id asc) order, so this is exactly
        // the pool an unsharded sweep would hand to the scorer.
        let m = k * 3;
        let mut per_shard: Vec<Vec<ScoredHit>> = Vec::with_capacity(snaps.len());
        for (i, snap) in snaps.iter().enumerate() {
            per_shard.push(
                snap.recommend_candidates(user, seed_sql, m)?
                    .into_iter()
                    .map(|h| ScoredHit {
                        id: self.globalize(i, h.id),
                        score: h.score,
                    })
                    .collect(),
            );
        }
        let pool = merge_scored(per_shard, m);
        // Score each candidate on its home shard (the record lives there)
        // with the merged global terms.
        let mut by_shard: Vec<Vec<(QueryId, f64)>> = vec![Vec::new(); snaps.len()];
        for h in &pool {
            let (shard, local) = self.locate(h.id);
            by_shard[shard].push((local, h.score));
        }
        let popularity_of = |fp: u64| pop.get(&fp).copied().unwrap_or(0);
        let mut rows: Vec<(f64, PanelRow)> = Vec::with_capacity(pool.len());
        for (i, hits) in by_shard.iter().enumerate() {
            if hits.is_empty() {
                continue;
            }
            for (score, mut row) in
                snaps[i].recommend_rows_for(seed_sql, hits, now_ts, max_pop, &popularity_of)?
            {
                row.id = self.globalize(i, row.id);
                rows.push((score, row));
            }
        }
        sort_panel_rows(&mut rows);
        Ok(rows.into_iter().map(|(_, r)| r).take(k).collect())
    }

    /// Identifier checking is schema-driven and identical on every shard.
    pub fn check_identifiers(&self, sql: &str) -> Vec<Correction> {
        self.shards[0].check_identifiers(sql)
    }

    /// Empty-result repair (schema + data driven; shard 0's data engine).
    pub fn repair_empty_result(&self, sql: &str, k: usize) -> Vec<RepairSuggestion> {
        self.shards[0].repair_empty_result(sql, k)
    }

    /// Association rules from every shard's miner, concatenated.
    pub fn association_rules(&self) -> Vec<AssocRule> {
        self.shards
            .iter()
            .flat_map(CqmsService::association_rules)
            .collect()
    }

    // ------------------------------------------------------------------
    // Background maintenance (per shard)
    // ------------------------------------------------------------------

    /// Run one synchronous miner epoch on every shard.
    pub fn run_miner_epoch(&self) -> Vec<MinerReport> {
        self.shards
            .iter()
            .map(CqmsService::run_miner_epoch)
            .collect()
    }

    /// Run one Query Maintenance pass on every shard.
    ///
    /// Quality's efficiency term ranks each query's latency against the
    /// *live corpus* — a global statistic. The shards' bases are merged
    /// up front (one snapshot per shard) and passed to every shard's
    /// pass, so maintained quality matches a single instance record for
    /// record and recommendation rank scores stay placement-independent.
    pub fn run_maintenance(&self) -> Result<Vec<(MaintenanceReport, RefreshReport)>, CqmsError> {
        let mut basis: Vec<u64> = Vec::new();
        for snap in self.snapshots() {
            basis.extend(snap.latency_basis());
        }
        basis.sort_unstable();
        self.shards
            .iter()
            .map(|s| s.run_maintenance_with_basis(Some(&basis)))
            .collect()
    }

    /// Execute scheduled index rebuilds; returns how many shards rebuilt.
    pub fn rebuild_indexes(&self) -> usize {
        self.shards.iter().filter(|s| s.rebuild_indexes()).count()
    }

    /// Start one background miner per shard (all idle → `true`).
    pub fn start_miner(&self, interval: Duration) -> bool {
        // Eagerly start every shard's miner before folding the answers —
        // a short-circuiting `all` would leave later shards unmined.
        let started: Vec<bool> = self
            .shards
            .iter()
            .map(|s| s.start_miner(interval))
            .collect();
        started.into_iter().all(|s| s)
    }

    /// Stop every shard's miner; total epochs, or `None` if none ran.
    pub fn stop_miner(&self) -> Option<usize> {
        let epochs: Vec<usize> = self
            .shards
            .iter()
            .filter_map(CqmsService::stop_miner)
            .collect();
        if epochs.is_empty() {
            None
        } else {
            Some(epochs.into_iter().sum())
        }
    }

    // ------------------------------------------------------------------
    // Repair supervisor lifecycle
    // ------------------------------------------------------------------

    /// Degraded shards still worth repairing: fenced, budget not
    /// exhausted, no attempt currently in flight.
    fn repair_pending(&self) -> usize {
        let st = self.state.read();
        st.fenced
            .iter()
            .filter(|s| !st.exhausted.contains(s))
            .count()
    }

    /// Start the background repair supervisor: every `interval` it runs
    /// one repair epoch ([`ShardedCqms::run_repair_epoch`]) until every
    /// degraded shard is promoted or exhausted, then parks. Returns
    /// `false` when already running or when this deployment has no
    /// durable directory to repair from ([`ShardedCqms::new`]).
    pub fn start_repair(&self, interval: Duration) -> bool {
        if self.repair_ctx.is_none() {
            return false;
        }
        let mut slot = self.repairer.lock();
        if slot.is_some() {
            return false;
        }
        let this = self.clone();
        let (stop_tx, stop_rx) = sync_channel::<()>(1);
        let handle = std::thread::Builder::new()
            .name("cqms-repair".into())
            .spawn(move || {
                let mut promoted_total = 0usize;
                loop {
                    match stop_rx.recv_timeout(interval) {
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => break,
                        Err(RecvTimeoutError::Timeout) => {}
                    }
                    promoted_total += this.run_repair_epoch().len();
                    if this.repair_pending() == 0 {
                        // Everything healed (or gave up): nothing left to
                        // poll for. stop_repair still joins cleanly.
                        break;
                    }
                }
                promoted_total
            })
            .expect("spawn cqms-repair supervisor");
        *slot = Some(BackgroundRepairer {
            stop_tx,
            handle: Some(handle),
        });
        true
    }

    /// Is the background repair supervisor attached?
    pub fn repair_running(&self) -> bool {
        self.repairer.lock().is_some()
    }

    /// Stop the background repair supervisor, if any: the thread is
    /// joined and the number of shards it promoted is returned.
    pub fn stop_repair(&self) -> Option<usize> {
        let handle = self.repairer.lock().take();
        handle.map(BackgroundRepairer::stop)
    }

    /// Run one synchronous repair epoch: attempt recovery of every
    /// degraded shard whose budget allows it, promoting each success back
    /// to serving. Returns the shards promoted this epoch, ascending.
    ///
    /// Recovery runs **off-lock** — only the repaired shard's own lock is
    /// touched, briefly, at promotion; healthy shards never block. Safe
    /// to call concurrently with the background supervisor: a shard with
    /// an attempt already in flight is skipped.
    pub fn run_repair_epoch(&self) -> Vec<usize> {
        let Some(ctx) = self.repair_ctx.clone() else {
            return Vec::new();
        };
        let candidates: Vec<usize> = {
            let mut st = self.state.write();
            let DegradedState {
                fenced,
                repairing,
                exhausted,
                ..
            } = &mut *st;
            let c: Vec<usize> = fenced
                .iter()
                .copied()
                .filter(|s| !exhausted.contains(s) && !repairing.contains(s))
                .collect();
            repairing.extend(c.iter().copied());
            repairing.sort_unstable();
            c
        };
        let mut promoted = Vec::new();
        for shard in candidates {
            if self.try_repair_shard(&ctx, shard) {
                promoted.push(shard);
            }
        }
        promoted
    }

    /// One repair attempt for one shard: re-open its directory off-lock
    /// (salvage + quarantine happen inside [`crate::wal::open_dir`]) and
    /// promote the recovered instance on success. Never panics — a panic
    /// inside recovery is caught and recorded as a failed attempt.
    fn try_repair_shard(&self, ctx: &RepairContext, shard: usize) -> bool {
        // Failpoints first (ambient plan, then the shard's own service
        // plan), so chaos tests can fail/stall/panic an attempt before
        // any real I/O happens.
        let fault = faults::global_plan()
            .hit(faults::REPAIR_ATTEMPT)
            .and_then(|()| self.shards[shard].fault_plan().hit(faults::REPAIR_ATTEMPT));
        let attempt = {
            let mut st = self.state.write();
            st.attempts[shard] += 1;
            st.attempts[shard]
        };
        let outcome = match fault {
            Err(e) => Err(CqmsError::ShardOpen {
                shard,
                detail: format!("repair attempt {attempt} failed: {e}"),
            }),
            Ok(()) => {
                let dir = ctx.dir.join(format!("shard-{shard}"));
                let config = ctx.config.clone();
                match catch_unwind(AssertUnwindSafe(|| {
                    let engine = (*ctx.factory.lock())();
                    Cqms::open(engine, config, dir)
                })) {
                    Ok(Ok(cqms)) => Ok(cqms),
                    Ok(Err(e)) => Err(CqmsError::ShardOpen {
                        shard,
                        detail: format!("repair attempt {attempt}: {e}"),
                    }),
                    Err(_) => Err(CqmsError::ShardOpen {
                        shard,
                        detail: format!("repair attempt {attempt} panicked"),
                    }),
                }
            }
        };
        match outcome {
            Ok(cqms) => self.promote(shard, cqms),
            Err(err) => {
                self.record_repair_failure(ctx, shard, err);
                false
            }
        }
    }

    /// Swap a recovered instance in for the degraded placeholder and
    /// un-fence writes. Replace happens strictly **before** un-fencing,
    /// so the first post-promotion writer is guaranteed to hit the
    /// recovered instance, never the empty placeholder.
    fn promote(&self, shard: usize, cqms: Cqms) -> bool {
        self.clock.fetch_max(cqms.now(), Ordering::SeqCst);
        let report = cqms.recovery().cloned().unwrap_or_default();
        match self.shards[shard].try_replace(cqms) {
            Ok(_placeholder) => {
                let mut st = self.state.write();
                st.fenced.retain(|s| *s != shard);
                st.repairing.retain(|s| *s != shard);
                st.recovery[shard] = Ok(report);
                true
            }
            Err(_recovered) => {
                // The shard lock stayed held for the whole grace budget.
                // Drop the recovered instance (its WAL is durable) and
                // let a later epoch retry from disk.
                let err = CqmsError::ShardOpen {
                    shard,
                    detail: "repaired, but promotion timed out on the shard lock".into(),
                };
                let mut st = self.state.write();
                st.repairing.retain(|s| *s != shard);
                st.recovery[shard] = Err(err);
                false
            }
        }
    }

    /// Record a failed attempt, clearing the in-flight mark and fencing
    /// the shard out of future epochs once its budget is exhausted.
    fn record_repair_failure(&self, ctx: &RepairContext, shard: usize, err: CqmsError) {
        let mut st = self.state.write();
        st.repairing.retain(|s| *s != shard);
        st.recovery[shard] = Err(err);
        let max = ctx.config.repair_max_attempts;
        if max > 0 && st.attempts[shard] >= max && !st.exhausted.contains(&shard) {
            st.exhausted.push(shard);
            st.exhausted.sort_unstable();
        }
    }

    /// Graceful shutdown of all shards: the repair supervisor is joined
    /// and every shard's miner runs its final epoch.
    pub fn shutdown(&self) -> Option<usize> {
        let _ = self.stop_repair();
        self.stop_miner()
    }
}

/// Exact k-way merge of per-shard `(score desc, id asc)` result lists via a
/// binary heap over shard cursors. Each input list must already be sorted
/// in that order (which every per-shard search guarantees); the output is
/// the global top-k in the same order.
fn merge_scored(per_shard: Vec<Vec<ScoredHit>>, k: usize) -> Vec<ScoredHit> {
    struct Cursor {
        shard: usize,
        pos: usize,
        head: ScoredHit,
    }
    impl PartialEq for Cursor {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == CmpOrdering::Equal
        }
    }
    impl Eq for Cursor {}
    impl PartialOrd for Cursor {
        fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Cursor {
        fn cmp(&self, other: &Self) -> CmpOrdering {
            // Max-heap: better hit = higher score, then smaller id.
            self.head
                .score
                .partial_cmp(&other.head.score)
                .unwrap_or(CmpOrdering::Equal)
                .then_with(|| other.head.id.cmp(&self.head.id))
        }
    }
    let mut heap: BinaryHeap<Cursor> = per_shard
        .iter()
        .enumerate()
        .filter_map(|(shard, hits)| {
            hits.first().map(|h| Cursor {
                shard,
                pos: 0,
                head: h.clone(),
            })
        })
        .collect();
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let Some(cur) = heap.pop() else { break };
        out.push(cur.head);
        let next_pos = cur.pos + 1;
        if let Some(h) = per_shard[cur.shard].get(next_pos) {
            heap.push(Cursor {
                shard: cur.shard,
                pos: next_pos,
                head: h.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Domain;

    fn engine_factory() -> impl FnMut() -> Engine {
        || {
            let mut e = Engine::new();
            Domain::Lakes.setup(&mut e, 60, 3);
            e
        }
    }

    fn sharded(n: usize) -> ShardedCqms {
        let config = CqmsConfig {
            shards: n,
            wal_fsync: false,
            ..CqmsConfig::default()
        };
        ShardedCqms::new(engine_factory(), config)
    }

    #[test]
    fn stripe_roundtrips() {
        let s = sharded(4);
        for shard in 0..4 {
            for local in [0u64, 1, 7, 1000] {
                let g = s.globalize(shard, QueryId(local));
                assert_eq!(s.locate(g), (shard, QueryId(local)));
            }
        }
    }

    #[test]
    fn users_route_stably_and_ids_are_globally_unique() {
        let s = sharded(4);
        let users: Vec<UserId> = (0..12)
            .map(|i| s.register_user(&format!("user{i}")))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for &u in &users {
            assert_eq!(s.shard_of(u), s.shard_of(u));
            let id = s
                .run_query(u, "SELECT lake, temp FROM WaterTemp WHERE temp < 18")
                .unwrap()
                .id;
            assert!(seen.insert(id), "duplicate global id {id}");
        }
        assert_eq!(s.live_count(), 12);
    }

    #[test]
    fn global_clock_is_monotonic_across_shards() {
        let s = sharded(4);
        let a = s.register_user("alice");
        let b = s.register_user("bob");
        s.run_query_at(a, "SELECT * FROM WaterTemp", 100).unwrap();
        s.run_query_at(b, "SELECT * FROM WaterTemp", 130).unwrap();
        // Ticking query advances past both, whichever shard it lands on.
        s.run_query(a, "SELECT salinity FROM WaterSalinity")
            .unwrap();
        assert_eq!(s.now(), 160);
        // Stale explicit timestamp never rewinds.
        s.run_query_at(b, "SELECT * FROM WaterTemp WHERE temp < 5", 40)
            .unwrap();
        assert_eq!(s.now(), 160);
    }

    #[test]
    fn batched_ingest_reassembles_in_input_order() {
        let s = sharded(3);
        let users: Vec<UserId> = (0..6)
            .map(|i| s.register_user(&format!("user{i}")))
            .collect();
        let items: Vec<IngestItem> = users
            .iter()
            .enumerate()
            .map(|(i, &u)| IngestItem::new(u, format!("SELECT * FROM WaterTemp WHERE temp < {i}")))
            .collect();
        let results = s.ingest_batch(&items);
        assert_eq!(results.len(), 6);
        for (i, (res, &u)) in results.iter().zip(&users).enumerate() {
            let id = *res.as_ref().unwrap();
            let (shard, local) = s.locate(id);
            assert_eq!(shard, s.shard_of(u), "item {i} landed on the wrong shard");
            let sql = s.shards()[shard].read(|c| c.storage.get(local).unwrap().raw_sql.clone());
            assert!(sql.contains(&format!("temp < {i}")));
        }
        assert!(s.ingest_batch(&[]).is_empty());
    }

    #[test]
    fn id_addressed_mutations_route_through_the_stripe() {
        let s = sharded(4);
        let u = s.register_user("alice");
        let id = s
            .run_query(u, "SELECT lake FROM WaterTemp WHERE temp < 18")
            .unwrap()
            .id;
        s.annotate(u, id, "cold lakes", None).unwrap();
        s.set_visibility(u, id, Visibility::Private).unwrap();
        assert_eq!(s.live_count(), 1);
        s.delete_query(u, id).unwrap();
        assert_eq!(s.live_count(), 0);
    }

    #[test]
    fn cross_shard_searches_see_everything() {
        let s = sharded(4);
        let users: Vec<UserId> = (0..8)
            .map(|i| s.register_user(&format!("user{i}")))
            .collect();
        for (i, &u) in users.iter().enumerate() {
            s.run_query(
                u,
                &format!("SELECT lake, temp FROM WaterTemp WHERE temp < {}", 10 + i),
            )
            .unwrap();
        }
        let viewer = users[0];
        assert_eq!(s.search_substring(viewer, "WaterTemp").len(), 8);
        let sub = s.search_substring(viewer, "temp < 10");
        assert_eq!(sub.len(), 1);
        let hits = s.search_keyword(viewer, "watertemp temp", 20);
        assert_eq!(hits.len(), 8);
        for w in hits.windows(2) {
            assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].id < w[1].id),
                "merged keyword hits out of order: {hits:?}"
            );
        }
        let knn = s
            .similar_queries(
                viewer,
                "SELECT lake, temp FROM WaterTemp WHERE temp < 12",
                5,
                DistanceKind::Features,
            )
            .unwrap();
        assert_eq!(knn.len(), 5);
    }

    #[test]
    fn feature_sql_concatenates_shards_and_remaps_ids() {
        let s = sharded(2);
        let a = s.register_user("alice");
        let b = s.register_user("bob");
        let ia = s.run_query(a, "SELECT temp FROM WaterTemp").unwrap().id;
        let ib = s.run_query(b, "SELECT temp FROM WaterTemp").unwrap().id;
        let r = s.search_feature_sql(a, "SELECT qid FROM Queries").unwrap();
        let mut got: Vec<i64> = r
            .rows
            .iter()
            .map(|row| match row[0] {
                relstore::Value::Int(v) => v,
                ref other => panic!("unexpected value {other:?}"),
            })
            .collect();
        got.sort();
        let mut want = vec![ia.0 as i64, ib.0 as i64];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn single_shard_degenerates_to_unsharded_behaviour() {
        let s = sharded(1);
        let u = s.register_user("alice");
        let id = s.run_query(u, "SELECT * FROM WaterTemp").unwrap().id;
        assert_eq!(s.locate(id), (0, id));
        assert_eq!(s.now(), 30);
    }

    #[test]
    fn merge_scored_is_an_exact_top_k() {
        let hit = |id: u64, score: f64| ScoredHit {
            id: QueryId(id),
            score,
        };
        // Shard lists in (score desc, id asc) order, ids striped mod 2.
        let a = vec![hit(0, 0.9), hit(2, 0.5), hit(4, 0.5)];
        let b = vec![hit(1, 0.9), hit(3, 0.7)];
        let merged = merge_scored(vec![a, b], 4);
        let ids: Vec<u64> = merged.iter().map(|h| h.id.0).collect();
        assert_eq!(ids, vec![0, 1, 3, 2], "{merged:?}");
    }

    #[test]
    fn miners_run_per_shard() {
        let s = sharded(3);
        let users: Vec<UserId> = (0..6)
            .map(|i| s.register_user(&format!("user{i}")))
            .collect();
        for &u in &users {
            for i in 0..4 {
                s.run_query(
                    u,
                    &format!(
                        "SELECT * FROM WaterSalinity S, WaterTemp T \
                         WHERE S.loc_x = T.loc_x AND T.temp < {i}"
                    ),
                )
                .unwrap();
            }
        }
        let reports = s.run_miner_epoch();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.wal_flush_error.is_none()));
        assert!(s.start_miner(Duration::from_secs(3600)));
        assert!(!s.start_miner(Duration::from_secs(3600)));
        let epochs = s.shutdown().expect("miners were running");
        assert_eq!(epochs, 3, "one final epoch per shard");
    }
}
