//! Tunable parameters (paper §2.4: "adjust tunable parameters such as the
//! sample size for the query-by-data approach").

/// How much the Query Profiler captures per query (ablation A5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfilingDepth {
    /// Log raw text only (the paper's "simplest data model").
    Text,
    /// Text + syntactic feature extraction into the Fig. 1 relations.
    Features,
    /// Features + runtime statistics + output summarisation (§4.1).
    Full,
}

/// All CQMS tunables with paper-faithful defaults.
#[derive(Debug, Clone)]
pub struct CqmsConfig {
    /// How much the profiler captures per query.
    pub profiling_depth: ProfilingDepth,

    // --- Output summarisation (§4.1) ---
    /// Reservoir size for sampled output summaries.
    pub output_sample_size: usize,
    /// Store the whole output when `rows ≤ max(full_output_min_rows,
    /// elapsed_ms × full_output_rows_per_ms)` — the paper's adaptive rule
    /// ("two hours / ten rows ⇒ store all; two seconds / 2M rows ⇒ don't").
    pub full_output_min_rows: u64,
    /// Rows of full-output budget earned per millisecond of runtime.
    pub full_output_rows_per_ms: f64,
    /// Hard cap on stored full outputs.
    pub full_output_max_rows: u64,

    // --- Session detection (§2.2/§4.1) ---
    /// Queries by the same user within this many seconds continue a session.
    pub session_idle_gap_secs: u64,
    /// Queries beyond the gap can still continue a session when at least
    /// this similar (template feature overlap), and queries within the gap
    /// break the session when utterly dissimilar.
    pub session_similarity_threshold: f64,

    // --- Assisted interaction (§2.3) ---
    /// Request an annotation when a query joins at least this many tables…
    pub annotate_table_threshold: usize,
    /// …or contains nesting.
    pub annotate_on_subquery: bool,
    /// Suggestions returned by completion/correction/recommendation.
    pub suggestion_k: usize,

    // --- Mining (§4.3) ---
    /// Minimum absolute support for frequent itemsets.
    pub assoc_min_support: u32,
    /// Minimum confidence for published association rules.
    pub assoc_min_confidence: f64,
    /// k for query clustering (0 = auto: √(n/2)).
    pub cluster_k: usize,
    /// Iteration cap for the k-medoids refinement loop.
    pub cluster_max_iters: usize,

    // --- Maintenance (§4.4) ---
    /// Drift score above which stored runtime statistics are refreshed.
    pub refresh_drift_threshold: f64,
    /// Max queries re-executed per refresh epoch.
    pub refresh_budget: usize,

    // --- Similarity / ranking (§2.3/§4.2) ---
    /// Feature-distance weight of the tables namespace.
    pub weight_tables: f64,
    /// Feature-distance weight of the attributes namespace.
    pub weight_attributes: f64,
    /// Feature-distance weight of the predicate-template namespace.
    pub weight_predicates: f64,
    /// Ranking weight of similarity to the seed.
    pub rank_similarity: f64,
    /// Ranking weight of template popularity.
    pub rank_popularity: f64,
    /// Ranking weight of recency.
    pub rank_recency: f64,
    /// Ranking weight of the maintained quality score.
    pub rank_quality: f64,

    // --- Durability (WAL + snapshots) ---
    /// `fsync` the log at every flush point and snapshots at every rename.
    /// Leave on for real deployments; tests and benches may disable it to
    /// measure the non-syscall overhead in isolation.
    pub wal_fsync: bool,
    /// Write a snapshot (and truncate the log) once this many operations
    /// have been logged since the last one. Checked by the miner epoch, so
    /// snapshots ride the existing background-maintenance seam.
    pub snapshot_every_ops: u64,

    // --- Admission control (overload robustness) ---
    /// Max concurrent admitted ingest requests per shard (the write-lock
    /// wait line). Request depth+1 is shed immediately with
    /// [`crate::error::CqmsError::Overloaded`] instead of queueing
    /// unboundedly. `0` disables the depth gate. Honours the
    /// `CQMS_INGEST_QUEUE_DEPTH` environment variable.
    pub ingest_queue_depth: usize,
    /// Per-user ingest token-bucket refill rate, requests/second.
    /// `0.0` (the default) disables rate limiting. Honours `CQMS_USER_RATE`.
    pub user_rate_limit: f64,
    /// Per-user token-bucket capacity (burst allowance). Honours
    /// `CQMS_USER_BURST`.
    pub user_rate_burst: f64,
    /// When true, [`crate::shard::ShardedCqms::open`] survives a corrupt
    /// or unreadable shard directory by opening that shard *degraded*
    /// (empty, rejecting writes with
    /// [`crate::error::CqmsError::ShardUnavailable`]) instead of failing
    /// the whole open. Honours `CQMS_OPEN_DEGRADED`.
    pub open_degraded: bool,
    /// Force an index-generation publish once this many overrides are
    /// outstanding in the registry head (each override costs every probe
    /// a linear scan — a repair storm would otherwise degrade reads until
    /// the next scheduled rebuild). `0` disables the forced publish.
    pub override_publish_threshold: usize,
    /// Total tries (1 + retries) for transient write-path faults: miner
    /// WAL flushes and snapshot writes retry with capped exponential
    /// backoff before surfacing the error.
    pub wal_retry_attempts: u32,
    /// Base backoff between write-path retries, in milliseconds
    /// (doubled per retry, capped at 8× the base).
    pub wal_retry_base_ms: u64,
    /// Seal the storage's COW delta heads (text/trigram/posting maps,
    /// session + popularity tables, interner) into fresh sealed
    /// generations once their combined size passes this many entries.
    /// The heads are what each published [`crate::snapshot::ReadSnapshot`]
    /// copies, so this bounds the per-publish copy cost; sealing itself
    /// is O(total keys) of cheap shared-structure clones, amortised over
    /// at least this many writes. `0` disables sealing. Honours
    /// `CQMS_SNAPSHOT_HEAD_LIMIT`.
    pub snapshot_head_limit: usize,

    // --- Sharding ---
    /// Number of independently write-locked shards a
    /// [`crate::shard::ShardedCqms`] splits the query log into. Queries
    /// route by user hash; `1` is an unsharded deployment. Defaults to
    /// `min(8, available cores)` and honours the `CQMS_SHARDS` environment
    /// variable (CI's shard-stress lever).
    pub shards: usize,
    /// How often the shard repair supervisor re-attempts recovery of
    /// degraded shards, in milliseconds. `0` disables the background
    /// loop (repairs then only happen via
    /// [`crate::shard::ShardedCqms::run_repair_epoch`]). Honours
    /// `CQMS_REPAIR_INTERVAL_MS`.
    pub repair_interval_ms: u64,
    /// Give up on a degraded shard after this many failed repair
    /// attempts (it stays fenced until restart). `0` means retry
    /// forever. Honours `CQMS_REPAIR_MAX_ATTEMPTS`.
    pub repair_max_attempts: u64,

    /// Deterministic seed for sampling/clustering.
    pub seed: u64,
}

/// The default shard count: `CQMS_SHARDS` when set and positive, otherwise
/// `min(8, available cores)`.
pub fn default_shards() -> usize {
    if let Ok(s) = std::env::var("CQMS_SHARDS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// Parse environment variable `name`, falling back to `default` when the
/// variable is unset or malformed.
fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// The default ingest gate depth: `CQMS_INGEST_QUEUE_DEPTH` when set,
/// otherwise 64 (≫ any reasonable writer-thread count; 0 disables).
pub fn default_ingest_queue_depth() -> usize {
    env_or("CQMS_INGEST_QUEUE_DEPTH", 64)
}

/// The default per-user rate limit: `CQMS_USER_RATE` when set, otherwise
/// 0.0 (rate limiting off).
pub fn default_user_rate_limit() -> f64 {
    env_or("CQMS_USER_RATE", 0.0)
}

/// The default per-user burst: `CQMS_USER_BURST` when set, otherwise 32.
pub fn default_user_rate_burst() -> f64 {
    env_or("CQMS_USER_BURST", 32.0)
}

/// The default degraded-open policy: `CQMS_OPEN_DEGRADED` truthy
/// (`1`/`true`) when set, otherwise false.
pub fn default_open_degraded() -> bool {
    std::env::var("CQMS_OPEN_DEGRADED")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true")
        })
        .unwrap_or(false)
}

/// The default repair-loop interval: `CQMS_REPAIR_INTERVAL_MS` when set,
/// otherwise 200 ms.
pub fn default_repair_interval_ms() -> u64 {
    env_or("CQMS_REPAIR_INTERVAL_MS", 200)
}

/// The default repair attempt cap: `CQMS_REPAIR_MAX_ATTEMPTS` when set,
/// otherwise 0 (retry forever).
pub fn default_repair_max_attempts() -> u64 {
    env_or("CQMS_REPAIR_MAX_ATTEMPTS", 0)
}

impl Default for CqmsConfig {
    fn default() -> Self {
        CqmsConfig {
            profiling_depth: ProfilingDepth::Full,
            output_sample_size: 32,
            full_output_min_rows: 10,
            full_output_rows_per_ms: 1.0,
            full_output_max_rows: 1000,
            session_idle_gap_secs: 600,
            session_similarity_threshold: 0.2,
            annotate_table_threshold: 3,
            annotate_on_subquery: true,
            suggestion_k: 5,
            assoc_min_support: 5,
            assoc_min_confidence: 0.5,
            cluster_k: 0,
            cluster_max_iters: 20,
            refresh_drift_threshold: 0.3,
            refresh_budget: 50,
            weight_tables: 0.5,
            weight_attributes: 0.3,
            weight_predicates: 0.2,
            rank_similarity: 0.6,
            rank_popularity: 0.2,
            rank_recency: 0.1,
            rank_quality: 0.1,
            wal_fsync: true,
            snapshot_every_ops: 8192,
            ingest_queue_depth: default_ingest_queue_depth(),
            user_rate_limit: default_user_rate_limit(),
            user_rate_burst: default_user_rate_burst(),
            open_degraded: default_open_degraded(),
            override_publish_threshold: 64,
            wal_retry_attempts: 3,
            wal_retry_base_ms: 1,
            snapshot_head_limit: env_or("CQMS_SNAPSHOT_HEAD_LIMIT", 4096),
            shards: default_shards(),
            repair_interval_ms: default_repair_interval_ms(),
            repair_max_attempts: default_repair_max_attempts(),
            seed: 0xC1D2_2009,
        }
    }
}

impl CqmsConfig {
    /// Rows of output worth storing in full, given execution time — the
    /// paper's §4.1 adaptive summarisation rule.
    pub fn full_output_budget(&self, elapsed_us: u64) -> u64 {
        let by_time = (elapsed_us as f64 / 1000.0 * self.full_output_rows_per_ms) as u64;
        by_time
            .max(self.full_output_min_rows)
            .min(self.full_output_max_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_follows_paper_examples() {
        let c = CqmsConfig::default();
        // "two hours to complete and outputs ten rows → store the whole
        // output": 2h ≫ 10 rows of budget.
        let two_hours_us = 2 * 3600 * 1_000_000u64;
        assert!(c.full_output_budget(two_hours_us) >= 10);
        // "two seconds and two million rows → no need to store the output":
        // budget for 2s is ~2000ms×1 = 2000 rows ≪ 2M.
        let two_secs_us = 2_000_000u64;
        assert!(c.full_output_budget(two_secs_us) < 2_000_000);
        // Fast queries still store tiny outputs.
        assert_eq!(c.full_output_budget(0), c.full_output_min_rows);
    }

    #[test]
    fn budget_is_capped() {
        let c = CqmsConfig::default();
        let day_us = 24 * 3600 * 1_000_000u64;
        assert_eq!(c.full_output_budget(day_us), c.full_output_max_rows);
    }

    #[test]
    fn ranking_weights_sum_to_one() {
        let c = CqmsConfig::default();
        let sum = c.rank_similarity + c.rank_popularity + c.rank_recency + c.rank_quality;
        assert!((sum - 1.0).abs() < 1e-9);
        let w = c.weight_tables + c.weight_attributes + c.weight_predicates;
        assert!((w - 1.0).abs() < 1e-9);
    }
}
