//! The generation-versioned index registry.
//!
//! PR 4 left every derived structure — the VP-tree, the feature-posting
//! lists, the tree-less side list — owned *inline* by the Query Storage:
//! a rebuild (tombstone threshold, maintenance `reindex`) dropped the
//! index and the next unlucky probe paid a stop-the-world lazy build
//! (~100 ms per 1000 trees). Following the segment/epoch designs of the
//! `tinydb` storage engines (immutable sealed state + a small mutable
//! head), this module splits every structural index into two halves:
//!
//! * a **sealed generation** ([`StructuralGen`]) — an immutable snapshot
//!   of the VP-tree, the tree-less list, the ParseTree
//!   profile-fingerprint groups and their complement, covering every
//!   record below a `horizon` qid. Readers grab it as an `Arc` and keep
//!   serving it unconditionally; it is only ever *replaced*, by a single
//!   atomic swap.
//! * a **mutable head** — the same four structures, maintained
//!   incrementally by the write paths for records at or above the
//!   horizon. The head is the delta log made queryable: probes merge
//!   sealed and head results, so a record is visible the moment its
//!   insert returns, no matter how stale the sealed generation is.
//!
//! Rebuilds are **scheduled**, never executed on a probe:
//! [`IndexRegistry::schedule_rebuild`] just sets a flag (tombstone
//! threshold crossed, a `reindex` landed, a summary was refreshed), and
//! the background miner epoch runs the double-buffered build —
//! `IndexRegistry::collect_rebuild` captures a cheap self-contained
//! snapshot (per-record `Arc` clones) under a momentary read lock,
//! [`RebuildSnapshot::build`] constructs generation N+1 with **no lock
//! held** (readers and writers both proceed against generation N for
//! the whole O(n log n) build), then
//! `IndexRegistry::publish_rebuild` *replays the delta* — inserts that
//! landed mid-build (qids past the collected horizon) and reindexes
//! recorded in the override log — and publishes with one atomic swap.
//! No probe ever sees a missing record: before the swap it finds
//! mid-build arrivals in the head; after the swap they are replayed into
//! generation N+1 before it becomes visible.
//!
//! Records whose *content* changed in place (maintenance repairs through
//! `reindex`, summary refreshes) are tracked in an **override log**: the
//! sealed and head entries for an overridden qid are masked at query
//! time and the record is re-evaluated from its live signature, so
//! probes stay exact between the repair and the next rebuild. Each
//! override carries a mutation epoch so a publish only retires overrides
//! the finished build actually observed.
//!
//! The feature-posting lists are the registry's permanently-mutable
//! head: appends are O(1) and coherent by construction, so they never
//! need sealing. Their lazy compaction, however, used to run inline the
//! moment a list crossed its stale threshold; the registry instead
//! queues the list and compacts it in the background maintenance pass
//! (`IndexRegistry::maintain_postings`), keeping every maintenance
//! transition O(1) per list and the read path allocation-free.

use crate::metricindex::{MetricIndexStats, TreeEntry, VpTree, REBUILD_DEAD_FRACTION};
use crate::model::{QueryRecord, Validity};
use crate::postings::{self, PostingCursor, PostingList};
use crate::signature::SimSignature;
use cqms_cow::{CowMap, SnapshotVec};
use sqlparse::{SelectProfile, SelectStatement, TreeNode, TreeShape};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::{Arc, RwLock};

/// One ParseTree profile-fingerprint group: every member's diff-folded
/// SELECT is *identical* (fingerprint bucket + structural equality, so a
/// hash collision can never merge two templates), which makes both the
/// diff lower bound and the exact diff distance shared across the whole
/// group — the per-probe sweep does one bound and at most one exact
/// evaluation per group instead of one per record.
#[derive(Debug, Clone)]
pub struct ProfileGroup {
    /// Fingerprint of the folded statement (bucket key; the executor
    /// uses it to merge a head group with its sealed twin per probe).
    pub fp: u64,
    /// The shared diff-folded statement (the group key).
    pub folded: Arc<SelectStatement>,
    /// Its clause profile, feeding [`sqlparse::edit_distance_lower_bound`].
    pub profile: Arc<SelectProfile>,
    /// Member qids, ascending. Built from non-tombstoned records;
    /// liveness/ACL/overrides are filtered at query time.
    pub members: Vec<u64>,
}

/// Profile-fingerprint grouping of every indexed record that has a
/// diff-folded SELECT (the ROADMAP's "identical folded SELECTs share one
/// bound/exact evaluation").
#[derive(Debug, Default, Clone)]
pub struct ProfileGroups {
    groups: Vec<ProfileGroup>,
    /// Folded-statement fingerprint → group indices (collision bucket).
    by_fp: HashMap<u64, Vec<u32>>,
}

impl ProfileGroups {
    /// Add `qid` to its group, creating the group on first sight.
    /// Returns `false` when the signature has no folded SELECT (the
    /// record belongs on the ungrouped side list instead).
    pub fn insert(&mut self, qid: u64, sig: &SimSignature) -> bool {
        let (Some(fp), Some(folded), Some(profile)) =
            (sig.profile_fp, &sig.folded_select, &sig.diff_profile)
        else {
            return false;
        };
        self.insert_parts(qid, fp, folded, profile);
        true
    }

    /// [`ProfileGroups::insert`] from pre-extracted parts (the rebuild
    /// snapshot carries these instead of whole signatures).
    fn insert_parts(
        &mut self,
        qid: u64,
        fp: u64,
        folded: &Arc<SelectStatement>,
        profile: &Arc<SelectProfile>,
    ) {
        let bucket = self.by_fp.entry(fp).or_default();
        for &gi in bucket.iter() {
            let g = &mut self.groups[gi as usize];
            if Arc::ptr_eq(&g.folded, folded) || g.folded == *folded {
                // Members arrive in ascending qid order on every path
                // (build scan, head inserts, publish replay), but a
                // sorted insert keeps the invariant unconditional.
                match g.members.last() {
                    Some(&last) if last >= qid => {
                        if let Err(pos) = g.members.binary_search(&qid) {
                            g.members.insert(pos, qid);
                        }
                    }
                    _ => g.members.push(qid),
                }
                return;
            }
        }
        let gi = self.groups.len() as u32;
        self.groups.push(ProfileGroup {
            fp,
            folded: Arc::clone(folded),
            profile: Arc::clone(profile),
            members: vec![qid],
        });
        bucket.push(gi);
    }

    /// Indices (into iteration order) of the groups bucketed under a
    /// folded-statement fingerprint — the executor uses this to find a
    /// head group's sealed twin without building any per-probe map.
    pub fn bucket(&self, fp: u64) -> &[u32] {
        self.by_fp.get(&fp).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct folded-SELECT groups.
    /// Number of profile groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Are there no groups?
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterate the groups in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &ProfileGroup> {
        self.groups.iter()
    }
}

/// One immutable sealed generation of the structural indexes. Covers
/// every record with `qid < horizon` as of the generation's publish;
/// younger records live in the registry's mutable head.
#[derive(Debug)]
pub struct StructuralGen {
    /// Monotonic generation number (0 = the empty pre-first-build gen).
    pub generation: u64,
    /// VP-tree over every non-tombstoned record with a parse tree.
    pub tree: VpTree,
    /// Sorted qids of covered records without a parse tree (distance
    /// exactly 1.0 under tree metrics). Liveness filtered at query time.
    pub treeless: Vec<u64>,
    /// ParseTree profile-fingerprint groups over covered records.
    pub groups: ProfileGroups,
    /// Sorted qids of covered records without a folded SELECT (the
    /// groups' complement; ParseTree evaluates them per record).
    pub ungrouped: Vec<u64>,
    /// Records with `qid < horizon` are covered by this generation.
    pub horizon: u64,
}

impl StructuralGen {
    fn empty() -> StructuralGen {
        StructuralGen {
            generation: 0,
            tree: VpTree::build(Vec::new()),
            treeless: Vec::new(),
            groups: ProfileGroups::default(),
            ungrouped: Vec::new(),
            horizon: 0,
        }
    }

    /// Index one record into this (still-private) generation — the
    /// publish-time delta replay (the bulk of a build goes through
    /// [`VpTree::build`] instead, whose median-radius pivots search
    /// better than incrementally-grown ones).
    fn add(&mut self, record: &QueryRecord, sig: &SimSignature) {
        let qid = record.id.0;
        if let (Some(tree), Some(shape)) = (&sig.tree, &sig.tree_shape) {
            self.tree.insert(TreeEntry {
                qid,
                tree: Arc::clone(tree),
                shape: Arc::clone(shape),
            });
        } else {
            self.treeless.push(qid);
        }
        if !self.groups.insert(qid, sig) {
            self.ungrouped.push(qid);
        }
    }
}

/// One record's build inputs, captured by [`RebuildSnapshot::collect`]:
/// nothing but `Arc` clones and copies, so collecting stays O(n) cheap
/// while a lock may be held.
struct RebuildRecord {
    qid: u64,
    tree: Option<(Arc<TreeNode>, Arc<TreeShape>)>,
    group: Option<(u64, Arc<SelectStatement>, Arc<SelectProfile>)>,
}

/// A consistent, self-contained snapshot of the record log's build
/// inputs. Collecting it (under whatever lock protects the storage) is
/// cheap — per-record `Arc` clones only; the expensive O(n log n)
/// generation construction ([`RebuildSnapshot::build`]) borrows nothing,
/// so the service layer and the background miner run it with **no lock
/// held at all** — readers and writers both proceed against generation N
/// for the entire build.
pub struct RebuildSnapshot {
    /// Non-tombstoned records below the horizon, ascending by qid.
    records: Vec<RebuildRecord>,
    horizon: u64,
    collect_epoch: u64,
    collect_seq: u64,
    dead_at_collect: usize,
}

impl RebuildSnapshot {
    /// Build generation N+1 from the snapshot. Pure: no locks, no
    /// borrows of the registry or the storage.
    pub fn build(self) -> IndexBuild {
        let mut gen = StructuralGen::empty();
        gen.horizon = self.horizon;
        // Bulk-build the VP-tree (median-radius pivots beat the
        // incrementally-grown head tree this generation replaces).
        let mut entries = Vec::new();
        for r in &self.records {
            match &r.tree {
                Some((tree, shape)) => entries.push(TreeEntry {
                    qid: r.qid,
                    tree: Arc::clone(tree),
                    shape: Arc::clone(shape),
                }),
                None => gen.treeless.push(r.qid),
            }
            match &r.group {
                Some((fp, folded, profile)) => {
                    gen.groups.insert_parts(r.qid, *fp, folded, profile);
                }
                None => gen.ungrouped.push(r.qid),
            }
        }
        gen.tree = VpTree::build(entries);
        IndexBuild {
            gen,
            collect_epoch: self.collect_epoch,
            collect_seq: self.collect_seq,
            dead_at_collect: self.dead_at_collect,
        }
    }
}

/// An in-flight double-buffered rebuild: generation N+1, fully built but
/// not yet published. Produced by [`RebuildSnapshot::build`] (or the
/// one-shot `IndexRegistry::begin_rebuild`), consumed by
/// `IndexRegistry::publish_rebuild` (exclusive borrow — replay the
/// delta, swap, retire generation N). The generation *number* is
/// assigned at publish time, so every swap bumps the published counter
/// by exactly 1 even when two rebuilds race.
pub struct IndexBuild {
    gen: StructuralGen,
    /// Override-log epoch observed at collect time: overrides recorded
    /// after it were not visible to this build and must survive publish.
    collect_epoch: u64,
    /// Publish-sequence number observed at collect time: a build whose
    /// collect predates the latest publish is redundant (that publish
    /// covered a newer snapshot) and is discarded instead of swapping
    /// older content back in or re-applying its counter bookkeeping.
    collect_seq: u64,
    /// Tombstones-of-indexed-records counter at collect time (the build
    /// dropped exactly these; later ones carry over).
    dead_at_collect: usize,
}

/// One override-log entry: a record whose sealed/head index entries went
/// stale in place (reindex, summary refresh).
#[derive(Debug, Clone, Copy)]
struct Override {
    qid: u64,
    /// Mutation epoch of the *latest* in-place change to this record.
    epoch: u64,
}

/// The registry's mutable head structures, bundled behind one `Arc` so a
/// registry clone (one per published read snapshot) shares them by
/// pointer. The first head mutation after a publish detaches the bundle
/// with one `Arc::make_mut` copy — O(head), which stays bounded because
/// every publish resets the head and churn schedules rebuilds.
#[derive(Debug, Clone)]
struct HeadState {
    tree: VpTree,
    treeless: Vec<u64>,
    groups: ProfileGroups,
    ungrouped: Vec<u64>,
    /// Override log, sorted by qid.
    overrides: Vec<Override>,
}

impl HeadState {
    fn empty() -> HeadState {
        HeadState {
            tree: VpTree::build(Vec::new()),
            treeless: Vec::new(),
            groups: ProfileGroups::default(),
            ungrouped: Vec::new(),
            overrides: Vec::new(),
        }
    }
}

/// The index registry: feature postings (mutable head), the sealed
/// structural generation (atomic-swap published), the mutable head
/// structures, the override log and the rebuild schedule. Owned by the
/// Query Storage; every write-path hook takes `&mut self` from storage's
/// own exclusive borrow, every probe reads through `&self`.
#[derive(Debug)]
pub struct IndexRegistry {
    /// Inverted feature-posting index: interned feature id → sorted qids.
    /// Every *live* record is present in each of its lists; non-live
    /// records linger as stale entries until the background compaction
    /// pass. Consumers filter candidates by liveness anyway, and the kNN
    /// pruning argument only needs live non-candidates to be provably
    /// feature-disjoint.
    postings: CowMap<u32, PostingList>,
    /// Feature ids whose lists crossed the stale threshold — compacted
    /// by the next [`IndexRegistry::maintain_postings`] pass instead of
    /// inline at the transition (a set, so queueing stays O(1) per list
    /// no matter how much churn piles up between epochs).
    compaction_due: HashSet<u32>,
    /// The published sealed generation. Readers clone the `Arc` (one
    /// brief read lock); a publish replaces it (one brief write lock) —
    /// the single atomic swap of the generation lifecycle.
    sealed: RwLock<Arc<StructuralGen>>,
    /// Mutable head: records at/above the sealed horizon, plus the
    /// override log — `Arc`-bundled so registry clones share it.
    head: Arc<HeadState>,
    /// Monotonic counter of in-place record mutations (override epochs).
    mutations: u64,
    /// Monotonic publish counter: a racing build that collected before
    /// the latest publish is discarded at its own publish instead of
    /// clobbering newer content (and the overrides the newer publish
    /// legitimately retired) or double-applying counter bookkeeping.
    publish_seq: u64,
    /// Tombstoned records that still occupy sealed/head tree entries.
    dead_since_seal: usize,
    rebuild_wanted: bool,
    /// Cheap-bound counters + generation observability. `Arc`-shared
    /// with read snapshots, so probes served off a snapshot still feed
    /// the same counters (they are relaxed atomics, not control flow).
    stats: Arc<MetricIndexStats>,
}

impl Clone for IndexRegistry {
    /// O(postings head + compaction queue): the sealed generation, the
    /// head bundle and the stats block are shared by pointer; the sealed
    /// posting generation is one `Arc` bump.
    fn clone(&self) -> Self {
        IndexRegistry {
            postings: self.postings.clone(),
            compaction_due: self.compaction_due.clone(),
            sealed: RwLock::new(self.sealed()),
            head: Arc::clone(&self.head),
            mutations: self.mutations,
            publish_seq: self.publish_seq,
            dead_since_seal: self.dead_since_seal,
            rebuild_wanted: self.rebuild_wanted,
            stats: Arc::clone(&self.stats),
        }
    }
}

impl Default for IndexRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexRegistry {
    /// An empty registry (generation 0, nothing scheduled).
    pub fn new() -> IndexRegistry {
        IndexRegistry {
            postings: CowMap::new(),
            compaction_due: HashSet::new(),
            sealed: RwLock::new(Arc::new(StructuralGen::empty())),
            head: Arc::new(HeadState::empty()),
            mutations: 0,
            publish_seq: 0,
            dead_since_seal: 0,
            rebuild_wanted: false,
            stats: Arc::new(MetricIndexStats::default()),
        }
    }

    // ------------------------------------------------------------------
    // Read side
    // ------------------------------------------------------------------

    /// The published sealed generation (cheap: one `Arc` clone under a
    /// momentary read lock — probes hold the snapshot, not the lock).
    pub fn sealed(&self) -> Arc<StructuralGen> {
        Arc::clone(&self.sealed.read().expect("sealed generation lock"))
    }

    /// Head VP-tree (records above the sealed horizon).
    pub fn head_tree(&self) -> &VpTree {
        &self.head.tree
    }

    /// Head tree-less side list, ascending (all qids above the sealed
    /// horizon, so chaining after the sealed list stays sorted).
    pub fn head_treeless(&self) -> &[u64] {
        &self.head.treeless
    }

    /// Head profile-fingerprint groups.
    pub fn head_groups(&self) -> &ProfileGroups {
        &self.head.groups
    }

    /// Head ungrouped side list, ascending.
    pub fn head_ungrouped(&self) -> &[u64] {
        &self.head.ungrouped
    }

    /// Is this record's index content stale (overridden in place since
    /// the covering structure was built)? Probes mask such entries and
    /// re-evaluate the record from its live signature.
    pub fn overridden(&self, qid: u64) -> bool {
        self.head
            .overrides
            .binary_search_by_key(&qid, |o| o.qid)
            .is_ok()
    }

    /// Qids in the override log, ascending.
    pub fn override_qids(&self) -> impl Iterator<Item = u64> + '_ {
        self.head.overrides.iter().map(|o| o.qid)
    }

    /// Outstanding overrides (each one is masked and re-evaluated by
    /// every probe until a publish retires it). The storage layer forces
    /// a publish once this crosses its configured threshold, bounding the
    /// per-probe override scan under repair storms.
    pub fn override_count(&self) -> usize {
        self.head.overrides.len()
    }

    /// Cheap-bound effectiveness counters + generation counters.
    pub fn stats(&self) -> &MetricIndexStats {
        &self.stats
    }

    /// The published generation number.
    pub fn generation(&self) -> u64 {
        self.stats.generation.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Write-path hooks (called by the Query Storage)
    // ------------------------------------------------------------------

    /// A non-tombstoned record was inserted: index it into the head.
    pub(crate) fn note_insert(&mut self, record: &QueryRecord, sig: &SimSignature) {
        let qid = record.id.0;
        let head = Arc::make_mut(&mut self.head);
        if let (Some(tree), Some(shape)) = (&sig.tree, &sig.tree_shape) {
            head.tree.insert(TreeEntry {
                qid,
                tree: Arc::clone(tree),
                shape: Arc::clone(shape),
            });
        } else {
            head.treeless.push(qid);
        }
        if !head.groups.insert(qid, sig) {
            head.ungrouped.push(qid);
        }
    }

    /// A record was tombstoned. Dead weight accumulates in the sealed
    /// and head structures — VP-tree entries *and* the tree-less /
    /// ungrouped side lists, which probes still touch per id — until it
    /// crosses [`REBUILD_DEAD_FRACTION`], which *schedules* a background
    /// rebuild; the probe path only ever reads whatever generation is
    /// published.
    pub(crate) fn note_tombstone(&mut self) {
        self.dead_since_seal += 1;
        if self.dead_fraction() > REBUILD_DEAD_FRACTION {
            self.schedule_rebuild();
        }
    }

    fn dead_fraction(&self) -> f64 {
        // `tree` + `treeless` covers every indexed record exactly once.
        let sealed = self.sealed.read().expect("sealed generation lock");
        let indexed = sealed.tree.len()
            + sealed.treeless.len()
            + self.head.tree.len()
            + self.head.treeless.len();
        self.dead_since_seal as f64 / indexed.max(1) as f64
    }

    /// A record's index content changed in place (reindex / summary
    /// refresh): log the override and schedule the rebuild that retires
    /// it. Until then, probes mask the stale entries and evaluate the
    /// record from its live signature.
    pub(crate) fn note_reindex(&mut self, qid: u64) {
        self.mutations += 1;
        let epoch = self.mutations;
        let overrides = &mut Arc::make_mut(&mut self.head).overrides;
        match overrides.binary_search_by_key(&qid, |o| o.qid) {
            Ok(pos) => overrides[pos].epoch = epoch,
            Err(pos) => overrides.insert(pos, Override { qid, epoch }),
        }
        self.schedule_rebuild();
    }

    // ------------------------------------------------------------------
    // Rebuild lifecycle
    // ------------------------------------------------------------------

    /// Request a background rebuild (executed by the next miner epoch or
    /// an explicit maintenance call — never by a probe).
    pub fn schedule_rebuild(&mut self) {
        if !self.rebuild_wanted {
            self.rebuild_wanted = true;
            self.stats
                .rebuilds_scheduled
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Has a rebuild been scheduled and not yet published?
    pub fn rebuild_pending(&self) -> bool {
        self.rebuild_wanted
    }

    /// Phase 1a of the double-buffered rebuild: capture a consistent,
    /// self-contained snapshot of the record log's build inputs. Cheap —
    /// per-record `Arc` clones only — so the moment this returns, the
    /// caller can drop whatever lock protects the storage and run the
    /// expensive [`RebuildSnapshot::build`] with no lock held at all.
    pub(crate) fn collect_rebuild(
        &self,
        records: &SnapshotVec<Arc<QueryRecord>>,
        signatures: &SnapshotVec<Arc<SimSignature>>,
    ) -> RebuildSnapshot {
        let entries = records
            .iter()
            .zip(signatures.iter())
            .filter(|(record, _)| record.validity != Validity::Deleted)
            .map(|(record, sig)| RebuildRecord {
                qid: record.id.0,
                tree: match (&sig.tree, &sig.tree_shape) {
                    (Some(t), Some(s)) => Some((Arc::clone(t), Arc::clone(s))),
                    _ => None,
                },
                group: match (sig.profile_fp, &sig.folded_select, &sig.diff_profile) {
                    (Some(fp), Some(f), Some(p)) => Some((fp, Arc::clone(f), Arc::clone(p))),
                    _ => None,
                },
            })
            .collect();
        RebuildSnapshot {
            records: entries,
            horizon: records.len() as u64,
            collect_epoch: self.mutations,
            collect_seq: self.publish_seq,
            dead_at_collect: self.dead_since_seal,
        }
    }

    /// Phases 1a + 1b in one call (collect + build) for synchronous
    /// callers that already hold exclusive access — the miner epoch's
    /// inline maintenance pass and tests.
    pub(crate) fn begin_rebuild(
        &self,
        records: &SnapshotVec<Arc<QueryRecord>>,
        signatures: &SnapshotVec<Arc<SimSignature>>,
    ) -> IndexBuild {
        self.collect_rebuild(records, signatures).build()
    }

    /// Phase 2: replay the delta that landed while the build ran —
    /// inserts past the collected horizon go into generation N+1
    /// incrementally; overrides the build observed are retired, younger
    /// ones survive — then publish with one atomic swap and reset the
    /// head. After this returns, probes serve generation N+1.
    ///
    /// Returns `false` (discarding the build) when a racing rebuild
    /// published since this build's collect: the standing generation
    /// covers a newer snapshot, so swapping the older content back in
    /// would serve pre-reindex entries whose overrides the newer publish
    /// legitimately retired — and re-running the counter bookkeeping
    /// would double-apply it.
    pub(crate) fn publish_rebuild(
        &mut self,
        mut build: IndexBuild,
        records: &SnapshotVec<Arc<QueryRecord>>,
        signatures: &SnapshotVec<Arc<SimSignature>>,
    ) -> bool {
        if build.collect_seq < self.publish_seq {
            return false;
        }
        // Delta replay: records inserted after the collect. A mid-build
        // insert that was already tombstoned again is excluded from the
        // generation — and stops counting as dead weight with it.
        let from = build.gen.horizon as usize;
        for (record, sig) in records.iter().zip(signatures.iter()).skip(from) {
            if record.validity != Validity::Deleted {
                build.gen.add(record, sig);
            } else {
                self.dead_since_seal = self.dead_since_seal.saturating_sub(1);
            }
        }
        build.gen.horizon = records.len() as u64;
        // Overrides the build saw are now materialised; mid-build ones
        // keep masking until the next rebuild. The head is fully covered
        // by the new horizon: reset it (a fresh bundle, so snapshots
        // holding the old head keep it alive untouched).
        let surviving: Vec<Override> = self
            .head
            .overrides
            .iter()
            .filter(|o| o.epoch > build.collect_epoch)
            .copied()
            .collect();
        let mut head = HeadState::empty();
        head.overrides = surviving;
        self.head = Arc::new(head);
        self.publish_seq += 1;
        // Tombstones the build dropped stop counting as dead weight.
        self.dead_since_seal -= build.dead_at_collect.min(self.dead_since_seal);
        // Publish: the one atomic swap of the lifecycle. The generation
        // number is assigned *here* — each swap bumps the published
        // counter by exactly 1 even when two rebuilds raced their
        // collect phases against the same base generation.
        let generation = self.generation() + 1;
        build.gen.generation = generation;
        *self.sealed.write().expect("sealed generation lock") = Arc::new(build.gen);
        self.stats.generation.store(generation, Ordering::Relaxed);
        self.stats
            .rebuilds_completed
            .fetch_add(1, Ordering::Relaxed);
        // Mid-build churn may immediately justify the next rebuild.
        self.rebuild_wanted =
            !self.head.overrides.is_empty() || self.dead_fraction() > REBUILD_DEAD_FRACTION;
        true
    }

    // ------------------------------------------------------------------
    // Feature postings (permanently-mutable head)
    // ------------------------------------------------------------------

    /// The raw posting map (lists may carry stale entries pending the
    /// background compaction pass).
    pub fn postings(&self) -> &CowMap<u32, PostingList> {
        &self.postings
    }

    /// Delta entries in the posting map's head — the per-snapshot copy
    /// cost the storage bounds via its `snapshot_head_limit`.
    pub fn postings_head_len(&self) -> usize {
        self.postings.head_len()
    }

    /// Fold the posting map's delta head into a fresh sealed generation
    /// (cheap per entry: a [`PostingList`] clone is two `Arc` bumps).
    pub(crate) fn seal_postings(&mut self) {
        self.postings.seal();
    }

    /// Append a freshly-inserted live record to its feature lists (ids
    /// are dense and ascending, so appends keep every list sorted).
    pub(crate) fn post(&mut self, sig: &SimSignature, qid: u64) {
        for fid in sig.feature_ids() {
            self.postings.entry_or_default(fid).append(qid);
        }
    }

    /// Make sure a revived record's feature ids are posted exactly once:
    /// stale leftovers flip back to alive instead of duplicating.
    pub(crate) fn repost(&mut self, sig: &SimSignature, qid: u64) {
        for fid in sig.feature_ids() {
            let list = self.postings.entry_or_default(fid);
            if !list.insert(qid) {
                list.mark_alive();
            }
        }
    }

    /// Note a record's posting entries stale (live → non-live
    /// transition). O(1) per list: a list crossing its stale threshold
    /// is *queued* for the background compaction pass, not compacted
    /// here — the maintenance transition stays allocation-free.
    pub(crate) fn mark_stale(&mut self, sig: &SimSignature, qid: u64) {
        for fid in sig.feature_ids() {
            if let Some(list) = self.postings.get_mut(&fid) {
                debug_assert!(list.contains(qid), "live record missing from posting");
                list.mark_dead();
                if list.needs_compaction() {
                    self.compaction_due.insert(fid);
                }
            }
        }
    }

    /// Hard-remove a record's posting entries (reindex path: the feature
    /// set itself changes, so stale-entry bookkeeping does not apply).
    pub(crate) fn remove_posted(&mut self, sig: &SimSignature, qid: u64, non_live: bool) {
        for fid in sig.feature_ids() {
            if let Some(list) = self.postings.get_mut(&fid) {
                if list.remove(qid) && non_live {
                    // The entry was counted stale; the counter follows it.
                    list.mark_alive();
                }
                if list.is_empty() {
                    self.postings.remove(&fid);
                }
            }
        }
    }

    /// Background compaction pass: rebuild every queued list down to the
    /// ids `keep` accepts (its currently-live members), dropping lists
    /// left empty. Runs in the miner epoch / maintenance, never on a
    /// read or maintenance-transition path.
    pub(crate) fn maintain_postings(&mut self, keep: impl Fn(u64) -> bool) -> usize {
        let mut compacted = 0;
        for fid in std::mem::take(&mut self.compaction_due) {
            let Some(list) = self.postings.get_mut(&fid) else {
                continue;
            };
            if !list.needs_compaction() {
                continue; // revivals brought it back under the threshold
            }
            list.retain(&keep);
            compacted += 1;
            if list.is_empty() {
                self.postings.remove(&fid);
            }
        }
        compacted
    }

    /// Candidate generation for kNN: sorted, deduplicated qids of all
    /// records sharing at least one feature with `sig`, via a galloping
    /// multi-way merge of the probe's posting lists.
    pub fn candidate_ids(&self, sig: &SimSignature) -> Vec<u64> {
        let cursors: Vec<PostingCursor<'_>> = sig
            .feature_ids()
            .filter_map(|fid| self.postings.get(&fid))
            .filter(|l| !l.is_empty())
            .map(PostingList::cursor)
            .collect();
        postings::union_cursors(cursors)
    }
}
