//! Unified CQMS error type.

use std::fmt;

/// Errors surfaced by the CQMS engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CqmsError {
    /// SQL failed to parse (wraps the frontend error).
    Parse(sqlparse::ParseError),
    /// The underlying engine rejected a statement.
    Engine(relstore::EngineError),
    /// The requesting user may not see or modify the target.
    NotAuthorized {
        /// The requesting user's id.
        user: u32,
        /// What was attempted.
        what: String,
    },
    /// A query/session/user id does not exist.
    NotFound(String),
    /// Administrative misuse (e.g. unknown group).
    Admin(String),
    /// Snapshot (de)serialisation failure.
    Snapshot(String),
    /// Write-ahead-log I/O or replay failure.
    Wal(String),
    /// The request was shed by admission control (queue depth or per-user
    /// rate limit). Retry after the hinted delay.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A shard's durable state failed to open ([`crate::shard::ShardedCqms::open`]).
    ShardOpen {
        /// The shard that failed.
        shard: usize,
        /// The underlying open/recovery error.
        detail: String,
    },
    /// The target shard was opened degraded (its durable state is
    /// unavailable) and cannot accept writes until the repair
    /// supervisor promotes it back to serving.
    ShardUnavailable {
        /// The degraded shard.
        shard: usize,
    },
}

impl fmt::Display for CqmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqmsError::Parse(e) => write!(f, "{e}"),
            CqmsError::Engine(e) => write!(f, "{e}"),
            CqmsError::NotAuthorized { user, what } => {
                write!(f, "user {user} is not authorized to access {what}")
            }
            CqmsError::NotFound(what) => write!(f, "not found: {what}"),
            CqmsError::Admin(m) => write!(f, "admin error: {m}"),
            CqmsError::Snapshot(m) => write!(f, "snapshot error: {m}"),
            CqmsError::Wal(m) => write!(f, "wal error: {m}"),
            CqmsError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms} ms")
            }
            CqmsError::ShardOpen { shard, detail } => {
                write!(f, "shard {shard} failed to open: {detail}")
            }
            CqmsError::ShardUnavailable { shard } => {
                write!(
                    f,
                    "shard {shard} is unavailable (degraded, awaiting repair)"
                )
            }
        }
    }
}

impl std::error::Error for CqmsError {}

impl From<sqlparse::ParseError> for CqmsError {
    fn from(e: sqlparse::ParseError) -> Self {
        CqmsError::Parse(e)
    }
}

impl From<relstore::EngineError> for CqmsError {
    fn from(e: relstore::EngineError) -> Self {
        CqmsError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = CqmsError::NotAuthorized {
            user: 3,
            what: "query 7".into(),
        };
        assert!(e.to_string().contains("user 3"));
        assert!(CqmsError::NotFound("q".into())
            .to_string()
            .contains("not found"));
        assert!(CqmsError::Overloaded { retry_after_ms: 25 }
            .to_string()
            .contains("retry after 25 ms"));
        assert!(CqmsError::ShardOpen {
            shard: 2,
            detail: "bad dir".into()
        }
        .to_string()
        .contains("shard 2"));
        assert!(CqmsError::ShardUnavailable { shard: 1 }
            .to_string()
            .contains("unavailable"));
    }

    #[test]
    fn conversions() {
        let pe = sqlparse::parse("NOT SQL").unwrap_err();
        let ce: CqmsError = pe.into();
        assert!(matches!(ce, CqmsError::Parse(_)));
        let ee = relstore::EngineError::UnknownTable("t".into());
        let ce: CqmsError = ee.into();
        assert!(matches!(ce, CqmsError::Engine(_)));
    }
}
