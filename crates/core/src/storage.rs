//! The Query Storage (Figure 4): records, feature relations, text indexes,
//! session graph, annotations, popularity — plus snapshot/restore.
//!
//! Queries are stored redundantly in three coordinated representations,
//! exactly the §4.1 "data model" discussion:
//!
//! * **raw text** indexed for keyword ([`textindex::InvertedIndex`]) and
//!   substring ([`textindex::TrigramIndex`]) meta-queries;
//! * **feature relations** (`Queries`, `DataSources`, `Attributes`,
//!   `Predicates`, `QueryMeta`) inside an embedded `relstore` engine, the
//!   target of SQL meta-queries (Figure 1);
//! * **typed records** ([`QueryRecord`]) carrying the parse tree, runtime
//!   features, output summary, annotations, ACLs and maintenance state.
//!
//! One `QueryStorage` is single-writer. Deployments that need parallel
//! write throughput run several — one per shard, routed by user hash —
//! behind [`crate::shard::ShardedCqms`], which merges cross-shard reads
//! exactly; ids here are then *shard-local* and striped into a global id
//! space by the shard layer.

use crate::error::CqmsError;
use crate::features::{self, SyntacticFeatures};
use crate::indexreg::{IndexBuild, IndexRegistry, RebuildSnapshot};
use crate::metricindex::MetricIndexStats;
use crate::model::*;
use crate::postings::PostingList;
use crate::signature::{FeatureInterner, SimSignature};
use crate::wal::{InsertFrame, WalOp, WalWriter};
use cqms_cow::{CowMap, SegVec, SnapshotVec};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::Arc;
use textindex::{InvertedIndex, TrigramIndex};

/// The CQMS query store.
///
/// Every container is copy-on-write ([`cqms_cow`], the text indexes'
/// persistent heads, the registry's `Arc`-bundled head), so `clone()`
/// produces an immutable snapshot in O(delta-head + len/CHUNK pointer
/// bumps) — the basis of the service layer's lock-free
/// [`crate::snapshot::ReadSnapshot`]. The embedded feature-relation
/// engine and the WAL are the two exceptions: a clone gets a fresh empty
/// engine and no WAL (it is `detached`), and the reads that need live
/// SQL stay on the service's lock-retained path.
pub struct QueryStorage {
    records: SnapshotVec<Arc<QueryRecord>>,
    /// Embedded engine holding the Figure 1 feature relations.
    meta: relstore::Engine,
    text: InvertedIndex,
    trigram: TrigramIndex,
    edges: SegVec<SessionEdge>,
    sessions: CowMap<SessionId, Vec<QueryId>>,
    /// Popularity: template fingerprint → number of live queries.
    template_counts: CowMap<u64, u32>,
    next_session: u64,
    /// Feature-key interner backing the similarity signatures.
    interner: FeatureInterner,
    /// Per-record similarity signatures, parallel to `records`.
    signatures: SnapshotVec<Arc<SimSignature>>,
    /// All derived index state — feature postings, the sealed structural
    /// generation (VP-tree, tree-less list, ParseTree profile groups),
    /// the mutable head, the override log and the rebuild schedule. See
    /// [`crate::indexreg`] for the generation lifecycle; probes read it
    /// through [`QueryStorage::indexes`], rebuilds run in the background
    /// miner epoch.
    indexes: IndexRegistry,
    /// Incrementally maintained count of live records (kept coherent by
    /// `insert`/`delete`/`set_validity`; validity must never be flipped
    /// through `get_mut`).
    live: usize,
    /// Write-ahead log, when this store is durable ([`crate::wal`]). Every
    /// sanctioned mutator logs its operation here; durability happens at
    /// the service layer's per-batch [`QueryStorage::wal_flush`].
    wal: Option<WalWriter>,
    /// Force an inline index publish once this many overrides are
    /// outstanding (0 = never). Each override costs every structural
    /// probe a scan entry until a publish retires it; under a repair
    /// storm the scheduled background rebuild may lag arbitrarily, so
    /// the storm itself amortises the publish instead. Wired from
    /// [`crate::config::CqmsConfig::override_publish_threshold`].
    override_publish_threshold: usize,
    /// `true` on snapshot clones: the feature-relation engine is a fresh
    /// empty stand-in there, and touching it is a logic error (guarded by
    /// `debug_assert` in the engine accessors).
    detached: bool,
}

impl Clone for QueryStorage {
    /// Cheap snapshot clone: O(COW delta heads + record-chunk pointer
    /// bumps), never O(store). The clone is `detached` — it shares every
    /// index and record by pointer but carries a fresh empty
    /// feature-relation engine and no WAL, so it must only serve reads
    /// that don't need live SQL over the feature relations.
    fn clone(&self) -> Self {
        QueryStorage {
            records: self.records.clone(),
            meta: relstore::Engine::new(),
            text: self.text.clone(),
            trigram: self.trigram.clone(),
            edges: self.edges.clone(),
            sessions: self.sessions.clone(),
            template_counts: self.template_counts.clone(),
            next_session: self.next_session,
            interner: self.interner.clone(),
            signatures: self.signatures.clone(),
            indexes: self.indexes.clone(),
            live: self.live,
            wal: None,
            override_publish_threshold: self.override_publish_threshold,
            detached: true,
        }
    }
}

impl Default for QueryStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryStorage {
    /// An empty storage with freshly created feature relations.
    pub fn new() -> Self {
        let mut meta = relstore::Engine::new();
        features::create_feature_relations(&mut meta);
        QueryStorage {
            records: SnapshotVec::new(),
            meta,
            text: InvertedIndex::new(),
            trigram: TrigramIndex::new(),
            edges: SegVec::new(),
            sessions: CowMap::new(),
            template_counts: CowMap::new(),
            next_session: 0,
            interner: FeatureInterner::new(),
            signatures: SnapshotVec::new(),
            indexes: IndexRegistry::new(),
            live: 0,
            wal: None,
            override_publish_threshold: 64,
            detached: false,
        }
    }

    /// Set the forced-publish threshold for outstanding overrides
    /// (0 disables; see the field docs).
    pub fn set_override_publish_threshold(&mut self, threshold: usize) {
        self.override_publish_threshold = threshold;
    }

    /// Number of logged queries (including tombstoned ones).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of live (visible, usable) queries. O(1): the counter is
    /// maintained incrementally across insert/delete/set_validity/load.
    pub fn live_count(&self) -> usize {
        debug_assert_eq!(
            self.live,
            self.records.iter().filter(|r| r.is_live()).count(),
            "live counter out of sync"
        );
        self.live
    }

    /// Allocate a fresh session id.
    pub fn new_session(&mut self) -> SessionId {
        let id = SessionId(self.next_session);
        self.next_session += 1;
        id
    }

    /// Insert a fully-built record (the Profiler constructs records; tests
    /// may too). The record's `id` must equal `self.len()`.
    ///
    /// A record arriving already tombstoned (snapshot restore) is logged
    /// but never indexed — the same end state [`QueryStorage::delete`]
    /// leaves behind.
    pub fn insert(&mut self, record: QueryRecord) -> QueryId {
        assert_eq!(
            record.id.0 as usize,
            self.records.len(),
            "QueryStorage ids are dense"
        );
        let id = record.id;
        let tombstoned = record.validity == Validity::Deleted;
        if !tombstoned {
            self.text.add(id.0, &record.raw_sql);
            self.trigram.add(id.0, &record.raw_sql);
            features::insert_features(
                &mut self.meta,
                &features::FeatureRowMeta {
                    qid: id.0,
                    author: record.user.0,
                    ts: record.ts,
                    session: record.session.0,
                    elapsed_us: record.runtime.elapsed_us,
                    cardinality: record.runtime.cardinality,
                    success: record.runtime.success,
                },
                &record.raw_sql,
                &record.features,
            );
            *self.template_counts.entry_or_default(record.template_fp) += 1;
        }
        self.sessions.entry_or_default(record.session).push(id);
        if record.session.0 >= self.next_session {
            self.next_session = record.session.0 + 1;
        }
        // Similarity signature + posting index (ids are dense and
        // inserted in order, so posting lists stay sorted by appending).
        // Only live records are posted — a snapshot-restored tombstone or
        // flagged record enters with its final validity and is skipped,
        // matching the state set_validity/delete leave behind.
        let sig = SimSignature::build(&record, &mut self.interner);
        if record.is_live() {
            self.indexes.post(&sig, id.0);
            self.live += 1;
        }
        // Index the record into the registry's mutable head: every
        // non-tombstoned record is indexed (flagged records may be
        // repaired later; tombstones never come back), and the sealed
        // generation stays untouched until the next background rebuild.
        if !tombstoned {
            self.indexes.note_insert(&record, &sig);
        }
        if self.wal.is_some() {
            let op = WalOp::Insert(Box::new(InsertFrame::of(&record)));
            self.wal_log(op);
        }
        self.signatures.push(Arc::new(sig));
        self.records.push(Arc::new(record));
        id
    }

    /// Look up a record by id (tombstoned records included).
    pub fn get(&self, id: QueryId) -> Result<&QueryRecord, CqmsError> {
        self.records
            .get(id.0 as usize)
            .map(Arc::as_ref)
            .ok_or_else(|| CqmsError::NotFound(format!("query {id}")))
    }

    /// Mutable record access. Bypasses every index/WAL hook — callers
    /// must keep derived state coherent (prefer the typed mutators).
    pub fn get_mut(&mut self, id: QueryId) -> Result<&mut QueryRecord, CqmsError> {
        self.records
            .get_mut(id.0 as usize)
            .map(Arc::make_mut)
            .ok_or_else(|| CqmsError::NotFound(format!("query {id}")))
    }

    /// All records (including tombstones — callers filter with
    /// [`QueryRecord::is_live`]).
    pub fn iter(&self) -> impl Iterator<Item = &QueryRecord> {
        self.records.iter().map(Arc::as_ref)
    }

    /// Live records only.
    pub fn iter_live(&self) -> impl Iterator<Item = &QueryRecord> {
        self.records.iter().map(Arc::as_ref).filter(|r| r.is_live())
    }

    /// The embedded feature-relation engine (Meta-query Executor entry).
    ///
    /// Shared access suffices for meta-queries: SQL reads go through
    /// [`relstore::Engine::query`] / `query_statement`, which take `&self`
    /// (lazy index maintenance lives behind interior mutability). Writers
    /// (the Profiler, deletes, maintenance) use [`QueryStorage::meta_engine_mut`].
    pub fn meta_engine(&self) -> &relstore::Engine {
        debug_assert!(
            !self.detached,
            "feature-relation reads must not run on a detached snapshot clone"
        );
        &self.meta
    }

    /// Mutable access to the feature-relation engine (write paths only).
    pub fn meta_engine_mut(&mut self) -> &mut relstore::Engine {
        debug_assert!(
            !self.detached,
            "feature-relation writes must not run on a detached snapshot clone"
        );
        &mut self.meta
    }

    /// Keyword index.
    pub fn text_index(&self) -> &InvertedIndex {
        &self.text
    }

    /// Substring index.
    pub fn trigram_index(&self) -> &TrigramIndex {
        &self.trigram
    }

    /// Popularity of a template (count of live queries sharing it).
    pub fn popularity(&self, template_fp: u64) -> u32 {
        self.template_counts.get(&template_fp).copied().unwrap_or(0)
    }

    /// Highest template popularity (for score normalisation).
    pub fn max_popularity(&self) -> u32 {
        self.template_counts.values().copied().max().unwrap_or(1)
    }

    /// The full popularity table as sorted `(template fingerprint, live
    /// count)` pairs, zero counts dropped. Independent of ingestion order,
    /// which makes it the state concurrency tests compare across replays.
    pub fn template_histogram(&self) -> Vec<(u64, u32)> {
        let mut hist: Vec<(u64, u32)> = self
            .template_counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&fp, &c)| (fp, c))
            .collect();
        hist.sort_unstable();
        hist
    }

    /// Record a session-graph edge.
    pub fn add_edge(&mut self, edge: SessionEdge) {
        self.wal_log(WalOp::Edge {
            from: edge.from,
            to: edge.to,
            kind: edge.kind,
        });
        self.edges.push(edge);
    }

    /// The session graph's edges, in insertion order.
    pub fn edges(&self) -> &SegVec<SessionEdge> {
        &self.edges
    }

    /// Edges within one session, in insertion order.
    pub fn session_edges(&self, session: SessionId) -> Vec<&SessionEdge> {
        let members = self.queries_in_session(session);
        self.edges
            .iter()
            .filter(|e| members.contains(&e.from) && members.contains(&e.to))
            .collect()
    }

    /// Queries of a session in insertion order.
    pub fn queries_in_session(&self, session: SessionId) -> Vec<QueryId> {
        self.sessions.get(&session).cloned().unwrap_or_default()
    }

    /// All session ids with at least one query.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self.sessions.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The most recent query of `user`, if any.
    pub fn last_query_of(&self, user: UserId) -> Option<&QueryRecord> {
        (0..self.records.len()).rev().find_map(|i| {
            let r = self.records.get(i).map(Arc::as_ref)?;
            (r.user == user).then_some(r)
        })
    }

    /// Attach an annotation (§2.1).
    pub fn annotate(&mut self, id: QueryId, annotation: Annotation) -> Result<(), CqmsError> {
        let logged = self.wal.is_some().then(|| annotation.clone());
        self.get_mut(id)?.annotations.push(annotation);
        if let Some(a) = logged {
            self.wal_log(WalOp::Annotate {
                id,
                author: a.author,
                at: a.at,
                text: a.text,
                fragment: a.fragment,
            });
        }
        Ok(())
    }

    /// Tombstone a query: drop it from every index (text, trigram,
    /// feature relations, feature postings); the record itself remains
    /// for audit (§2.4 delete).
    pub fn delete(&mut self, id: QueryId) -> Result<(), CqmsError> {
        let (tfp, was_live) = {
            let r = self.get_mut(id)?;
            if r.validity == Validity::Deleted {
                return Ok(()); // idempotent: already tombstoned
            }
            let tfp = r.template_fp;
            let was_live = r.is_live();
            r.validity = Validity::Deleted;
            (tfp, was_live)
        };
        if was_live {
            self.live -= 1;
            // A record that was already non-live (flagged/obsoleted) had
            // its posting entries counted stale at that transition —
            // marking again would double-count.
            self.mark_dead_postings(id);
        }
        self.text.remove(id.0);
        self.trigram.remove(id.0);
        features::delete_features(&mut self.meta, id.0);
        if let Some(c) = self.template_counts.get_mut(&tfp) {
            *c = c.saturating_sub(1);
        }
        // Tombstones are permanent dead weight in the structural indexes
        // (probes filter them by liveness — VP-tree entries and side-list
        // ids alike): the registry counts them and schedules a background
        // rebuild past the threshold — the probe path keeps serving the
        // published generation either way.
        self.indexes.note_tombstone();
        self.wal_log(WalOp::Tombstone { id });
        Ok(())
    }

    /// Change a record's maintenance validity, keeping the live counter
    /// and the feature-posting index coherent. Query Maintenance goes
    /// through here (never through `get_mut`) when it flags, repairs or
    /// obsoletes a query.
    ///
    /// Tombstoning is *not* a validity edit: transitions into
    /// `Validity::Deleted` must use [`QueryStorage::delete`] (which also
    /// drops the text indexes, feature relations and popularity count),
    /// and tombstoned records cannot be resurrected — both directions
    /// are rejected here.
    pub fn set_validity(&mut self, id: QueryId, validity: Validity) -> Result<(), CqmsError> {
        if validity == Validity::Deleted {
            return Err(CqmsError::Admin(
                "set_validity cannot tombstone; use QueryStorage::delete".into(),
            ));
        }
        if self.get(id)?.validity == Validity::Deleted {
            return Err(CqmsError::Admin(format!(
                "query {id} is tombstoned and cannot change validity"
            )));
        }
        let logged = self.wal.is_some().then(|| validity.clone());
        let (was_live, now_live) = {
            let r = self.get_mut(id)?;
            let was_live = r.is_live();
            r.validity = validity;
            (was_live, r.is_live())
        };
        if let Some(v) = logged {
            self.wal_log(WalOp::SetValidity { id, validity: v });
        }
        // The VP-tree needs no update on either transition: it indexes
        // every non-tombstoned record and filters liveness at query time,
        // so a flagged record is hidden now and findable again the moment
        // maintenance repairs it.
        match (was_live, now_live) {
            (true, false) => {
                self.live -= 1;
                self.mark_dead_postings(id);
            }
            (false, true) => {
                self.live += 1;
                self.ensure_posted(id);
            }
            _ => {}
        }
        Ok(())
    }

    /// Change a record's access control (§2.4 administrative interaction).
    /// The sanctioned route for visibility edits: unlike a bare `get_mut`
    /// assignment, this logs the change to the WAL when one is attached.
    pub fn set_visibility(&mut self, id: QueryId, visibility: Visibility) -> Result<(), CqmsError> {
        self.get_mut(id)?.visibility = visibility;
        self.wal_log(WalOp::SetVisibility { id, visibility });
        Ok(())
    }

    /// Move one query's popularity count between template fingerprints —
    /// a maintenance repair can change a record's template (e.g. a table
    /// rename), and the count must follow it.
    pub(crate) fn retemplate(&mut self, old_fp: u64, new_fp: u64) {
        if old_fp == new_fp {
            return;
        }
        if let Some(c) = self.template_counts.get_mut(&old_fp) {
            *c = c.saturating_sub(1);
        }
        *self.template_counts.entry_or_default(new_fp) += 1;
    }

    /// Make sure a (live) record's feature ids are posted exactly once.
    /// Its entries may still be present as stale leftovers from an earlier
    /// live→non-live transition; those flip back to alive instead of
    /// duplicating.
    fn ensure_posted(&mut self, id: QueryId) {
        let QueryStorage {
            signatures,
            indexes,
            ..
        } = self;
        if let Some(sig) = signatures.get(id.0 as usize) {
            indexes.repost(sig, id.0);
        }
    }

    /// Note a record's posting entries stale. Callers invoke this exactly
    /// at the record's live → non-live transition, and live records are
    /// always present in each of their lists (insert appends, revival
    /// re-inserts, compaction retains them), so no membership check is
    /// needed — marking is O(1) per list. A list whose stale fraction
    /// passes the threshold is *queued* for the registry's background
    /// compaction pass ([`QueryStorage::compact_postings`]) instead of
    /// being compacted inline.
    fn mark_dead_postings(&mut self, id: QueryId) {
        let QueryStorage {
            signatures,
            indexes,
            ..
        } = self;
        if let Some(sig) = signatures.get(id.0 as usize) {
            indexes.mark_stale(sig, id.0);
        }
    }

    /// Hard-remove a record's posting entries (reindex path: the feature
    /// set itself is changing, so stale-entry bookkeeping does not apply).
    fn remove_postings(&mut self, id: QueryId) {
        let QueryStorage {
            signatures,
            indexes,
            records,
            ..
        } = self;
        let Some(sig) = signatures.get(id.0 as usize) else {
            return;
        };
        let non_live = records
            .get(id.0 as usize)
            .map(|r| !r.is_live())
            .unwrap_or(true);
        indexes.remove_posted(sig, id.0, non_live);
    }

    /// Re-index a record whose SQL (or output summary) was rewritten —
    /// the maintenance repair path, and the only sanctioned route for
    /// any in-place record mutation that derived state depends on.
    ///
    /// Text indexes, feature relations, the similarity signature and the
    /// posting entries are rebuilt immediately; the structural indexes
    /// (VP-tree, ParseTree profile groups) are *not* rebuilt inline —
    /// the registry logs an override (probes mask the stale entries and
    /// re-evaluate this record from its fresh signature) and schedules a
    /// background rebuild into the next miner epoch.
    pub fn reindex(&mut self, id: QueryId) -> Result<(), CqmsError> {
        let (sql, meta_row, feats) = {
            let r = self.get(id)?;
            (
                r.raw_sql.clone(),
                features::FeatureRowMeta {
                    qid: id.0,
                    author: r.user.0,
                    ts: r.ts,
                    session: r.session.0,
                    elapsed_us: r.runtime.elapsed_us,
                    cardinality: r.runtime.cardinality,
                    success: r.runtime.success,
                },
                r.features.clone(),
            )
        };
        self.text.add(id.0, &sql);
        self.trigram.add(id.0, &sql);
        features::delete_features(&mut self.meta, id.0);
        features::insert_features(&mut self.meta, &meta_row, &sql, &feats);
        // Rebuild the similarity signature and its posting entries (the
        // statement, features and possibly the summary changed).
        self.remove_postings(id);
        let (sig, live) = {
            let QueryStorage {
                records, interner, ..
            } = &mut *self;
            let r = records
                .get(id.0 as usize)
                .expect("validated by get above")
                .as_ref();
            (SimSignature::build(r, interner), r.is_live())
        };
        *self
            .signatures
            .get_mut(id.0 as usize)
            .expect("signatures parallel records") = Arc::new(sig);
        if live {
            self.ensure_posted(id);
        }
        // The record's parse tree / folded SELECT / summary may have
        // changed: log an override (probes re-evaluate this record from
        // the fresh signature) and schedule the background rebuild that
        // retires it — no index is dropped, no probe pays a lazy build.
        self.indexes.note_reindex(id.0);
        self.wal_log(WalOp::Reindex { id, raw_sql: sql });
        // Bulk-repair bound: the override log is scanned by every probe,
        // and a repair storm can outpace the background rebuild that
        // retires it. Once the log crosses the threshold, publish a
        // generation inline — the storm pays for its own cleanup, and
        // probes never scan more than `threshold` overrides.
        if self.override_publish_threshold > 0
            && self.indexes.override_count() >= self.override_publish_threshold
        {
            let build = self.begin_index_rebuild();
            self.publish_index_rebuild(build);
        }
        Ok(())
    }

    /// Refresh a record's output summary (§4.4 statistics refresh). The
    /// summary feeds the signature's hashed output row/cell sets — the
    /// query-by-data screens and the Output/Combined distances — so the
    /// *only* sanctioned route is this sealed setter, which routes
    /// through [`QueryStorage::reindex`] (now a registry rebuild
    /// request). Mutating `record.summary` through `get_mut` instead
    /// trips the coherence `debug_assert` on the query-by-data path.
    pub fn refresh_summary(
        &mut self,
        id: QueryId,
        summary: OutputSummary,
    ) -> Result<(), CqmsError> {
        self.get_mut(id)?.summary = summary;
        self.reindex(id)
    }

    // ------------------------------------------------------------------
    // Similarity signatures & posting index
    // ------------------------------------------------------------------

    /// The precomputed similarity signature of a record.
    pub fn signature(&self, id: QueryId) -> Option<&SimSignature> {
        self.signatures.get(id.0 as usize).map(Arc::as_ref)
    }

    /// All signatures, parallel to the record vector.
    pub fn signatures(&self) -> &SnapshotVec<Arc<SimSignature>> {
        &self.signatures
    }

    /// The feature-key interner backing the signatures.
    pub fn interner(&self) -> &FeatureInterner {
        &self.interner
    }

    /// The index registry: feature postings, the published structural
    /// generation, the mutable head and the override log. Probes read
    /// indexes through here ([`IndexRegistry::sealed`] + head accessors).
    pub fn indexes(&self) -> &IndexRegistry {
        &self.indexes
    }

    /// The inverted feature-posting index (feature id → posting list;
    /// lists may carry stale non-live entries pending the background
    /// compaction pass).
    pub fn postings(&self) -> &CowMap<u32, PostingList> {
        self.indexes.postings()
    }

    /// The decoded posting ids of one feature, restricted to currently
    /// live records — the canonical view of the index, independent of
    /// compaction timing (tests compare storages through this).
    pub fn live_posting_ids(&self, fid: u32) -> Vec<u64> {
        self.indexes
            .postings()
            .get(&fid)
            .map(|l| {
                l.iter()
                    .filter(|&q| {
                        self.records
                            .get(q as usize)
                            .map(|r| r.is_live())
                            .unwrap_or(false)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Build a probe signature for a record that is not (necessarily) in
    /// the store — ad-hoc SQL being composed, §2.3. Read-only: unseen
    /// features get sentinel ids that match nothing.
    pub fn probe_signature(&self, record: &QueryRecord) -> SimSignature {
        SimSignature::probe(record, &self.interner)
    }

    /// Candidate generation for kNN: the sorted, deduplicated qids of all
    /// records sharing at least one feature with `sig`, via a galloping
    /// multi-way merge of the probe's posting lists. Every *live* record
    /// outside this set has per-namespace feature Jaccard of exactly 1.0
    /// (or 0.0 for mutually empty namespaces), which bounds its distance
    /// below without touching it. The set may contain stale non-live ids
    /// (pending background compaction); callers filter by liveness anyway.
    pub fn candidate_ids(&self, sig: &SimSignature) -> Vec<u64> {
        self.indexes.candidate_ids(sig)
    }

    /// Cheap-bound effectiveness counters + generation counters for the
    /// tree metrics.
    pub fn metric_stats(&self) -> &MetricIndexStats {
        self.indexes.stats()
    }

    // ------------------------------------------------------------------
    // Index rebuild lifecycle (background; see `crate::indexreg`)
    // ------------------------------------------------------------------

    /// The published structural-index generation number.
    pub fn index_generation(&self) -> u64 {
        self.indexes.generation()
    }

    /// Request a background structural rebuild (the next miner epoch —
    /// or an explicit [`QueryStorage::run_index_maintenance`] — executes
    /// it; probes never do).
    pub fn schedule_index_rebuild(&mut self) {
        self.indexes.schedule_rebuild();
    }

    /// Is a rebuild currently scheduled?
    pub fn index_rebuild_pending(&self) -> bool {
        self.indexes.rebuild_pending()
    }

    /// Phase 1a of the double-buffered rebuild: capture a cheap,
    /// self-contained snapshot of the build inputs (per-record `Arc`
    /// clones only). The service layer and background miner grab this
    /// under a read lock, drop the lock, and run the O(n log n)
    /// [`RebuildSnapshot::build`] with no lock held — readers *and*
    /// writers proceed against generation N for the entire build.
    pub fn collect_index_rebuild(&self) -> RebuildSnapshot {
        self.indexes
            .collect_rebuild(&self.records, &self.signatures)
    }

    /// Phases 1a + 1b in one call (collect + build) for synchronous
    /// callers that already hold exclusive access.
    pub fn begin_index_rebuild(&self) -> IndexBuild {
        self.indexes.begin_rebuild(&self.records, &self.signatures)
    }

    /// Phase 2: replay the delta that landed mid-build (inserts past the
    /// collected horizon, overrides the build missed), publish with one
    /// atomic swap, and run the queued posting compactions. Returns
    /// `false` when the build was discarded as stale (a racing rebuild
    /// that collected against a newer mutation epoch published first).
    pub fn publish_index_rebuild(&mut self, build: IndexBuild) -> bool {
        let published = {
            let QueryStorage {
                records,
                signatures,
                indexes,
                ..
            } = self;
            indexes.publish_rebuild(build, records, signatures)
        };
        self.compact_postings();
        published
    }

    /// The background index-maintenance pass (run from the miner epoch):
    /// executes a scheduled rebuild synchronously and compacts queued
    /// posting lists. Returns whether a rebuild was published.
    pub fn run_index_maintenance(&mut self) -> bool {
        if self.indexes.rebuild_pending() {
            let build = self.begin_index_rebuild();
            self.publish_index_rebuild(build)
        } else {
            self.compact_postings();
            false
        }
    }

    /// Compact every posting list queued by a live→non-live transition
    /// down to its currently-live members.
    pub fn compact_postings(&mut self) -> usize {
        let QueryStorage {
            records, indexes, ..
        } = self;
        indexes.maintain_postings(|q| {
            records
                .get(q as usize)
                .map(|r| r.is_live())
                .unwrap_or(false)
        })
    }

    /// Total delta-head entries across the COW containers — the marginal
    /// copy cost the *next* snapshot clone pays (sealed state is shared
    /// by pointer; only heads are copied per clone).
    pub fn cow_head_len(&self) -> usize {
        self.text.head_len()
            + self.trigram.head_len()
            + self.indexes.postings_head_len()
            + self.sessions.head_len()
            + self.template_counts.head_len()
            + self.interner.head_len()
    }

    /// Fold every COW delta head into a fresh sealed generation once the
    /// total passes `limit` (0 disables). Called by the write path before
    /// publishing a read snapshot — sealing is O(total keys) but each
    /// value moves by a cheap shared-structure clone, and it resets the
    /// per-publish copy cost back to ~zero. Returns whether it sealed.
    pub fn maybe_seal_cow_heads(&mut self, limit: usize) -> bool {
        if limit == 0 || self.cow_head_len() < limit {
            return false;
        }
        self.seal_cow_heads();
        true
    }

    /// Unconditionally fold the COW delta heads (the maintenance pass and
    /// tests use this; the write path goes through
    /// [`QueryStorage::maybe_seal_cow_heads`]).
    pub fn seal_cow_heads(&mut self) {
        self.text.seal();
        self.trigram.seal();
        self.indexes.seal_postings();
        self.sessions.seal();
        self.template_counts.seal();
        self.interner.seal();
    }

    /// Adopt a refined session assignment from the Query Miner (§4.3: the
    /// miner periodically recomputes sessions offline). Rewrites record
    /// session ids, the session map and the `QueryMeta` feature relation.
    pub fn adopt_sessions(&mut self, assignment: &HashMap<QueryId, SessionId>) {
        self.sessions.clear();
        let mut max_session = 0u64;
        for i in 0..self.records.len() {
            let (id, cur_session) = {
                let r = self.records.get(i).expect("dense ids");
                (r.id, r.session)
            };
            let session = match assignment.get(&id) {
                Some(&s) => {
                    if s != cur_session {
                        Arc::make_mut(self.records.get_mut(i).expect("dense ids")).session = s;
                    }
                    s
                }
                None => cur_session,
            };
            self.sessions.entry_or_default(session).push(id);
            max_session = max_session.max(session.0);
        }
        self.next_session = max_session + 1;
        // Refresh QueryMeta.sessionId (one UPDATE per record keeps the
        // feature relations the single SQL-visible source of truth).
        for (id, session) in self
            .records
            .iter()
            .map(|r| (r.id.0, r.session.0))
            .collect::<Vec<_>>()
        {
            let _ = self.meta.execute(&format!(
                "UPDATE QueryMeta SET sessionId = {session} WHERE qid = {id}"
            ));
        }
    }

    // ------------------------------------------------------------------
    // Durability (see crate::wal)
    // ------------------------------------------------------------------

    /// Log one op to the attached WAL (no-op on a pure-RAM store).
    fn wal_log(&mut self, op: WalOp) {
        if let Some(w) = self.wal.as_mut() {
            w.log(&op);
        }
    }

    /// Attach a write-ahead log: every subsequent sanctioned mutation is
    /// logged and becomes durable at the next [`QueryStorage::wal_flush`].
    pub fn attach_wal(&mut self, writer: WalWriter) {
        self.wal = Some(writer);
    }

    /// Detach the WAL (ops stop being logged), returning the writer.
    pub fn detach_wal(&mut self) -> Option<WalWriter> {
        self.wal.take()
    }

    /// Is this store durable?
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// Make every logged op durable — the acknowledgement point the
    /// service layer hits once per write operation / ingest batch.
    pub fn wal_flush(&mut self) -> Result<(), CqmsError> {
        match self.wal.as_mut() {
            Some(w) => w.flush().map_err(crate::wal::wal_io),
            None => Ok(()),
        }
    }

    /// LSN of the most recently logged op (None without a WAL).
    pub fn wal_last_lsn(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.last_lsn())
    }

    /// Ops logged since the last snapshot mark (0 without a WAL) — the
    /// miner epoch's snapshot trigger.
    pub fn wal_ops_since_snapshot(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.ops_since_snapshot())
    }

    /// A snapshot at `horizon` is durable elsewhere: rotate to a fresh
    /// segment and prune what the snapshot covers (the off-lock snapshot
    /// path, which wrote the file itself via [`crate::wal::write_snapshot_file`]).
    pub fn wal_mark_snapshot(&mut self, horizon: u64) -> Result<(), CqmsError> {
        match self.wal.as_mut() {
            Some(w) => w.mark_snapshot(horizon).map_err(crate::wal::wal_io),
            None => Ok(()),
        }
    }

    /// Write a snapshot body through the sink, then mark it (the inline
    /// path for synchronous callers and in-memory sinks).
    pub fn wal_write_snapshot(&mut self, horizon: u64, body: &[u8]) -> Result<(), CqmsError> {
        match self.wal.as_mut() {
            Some(w) => w.write_snapshot(horizon, body).map_err(crate::wal::wal_io),
            None => Ok(()),
        }
    }

    /// The WAL directory when the sink is file-backed (None otherwise).
    pub fn wal_snapshot_dir(&self) -> Option<std::path::PathBuf> {
        self.wal.as_ref().and_then(|w| w.snapshot_dir())
    }

    // ------------------------------------------------------------------
    // Snapshot / restore
    // ------------------------------------------------------------------

    /// Persist the storage as a TSV-ish text snapshot. Indexes and feature
    /// relations are derived state and get rebuilt on load.
    ///
    /// ```
    /// use cqms_core::storage::QueryStorage;
    ///
    /// let storage = QueryStorage::new();
    /// let mut buf = Vec::new();
    /// storage.snapshot(&mut buf).unwrap();
    /// assert!(buf.starts_with(b"cqms-snapshot v1"));
    /// ```
    pub fn snapshot(&self, mut out: impl Write) -> Result<(), CqmsError> {
        let w = &mut out;
        writeln!(w, "cqms-snapshot v1").map_err(io_err)?;
        writeln!(w, "[records]").map_err(io_err)?;
        for r in &self.records {
            let validity = match &r.validity {
                Validity::Valid => "valid".to_string(),
                Validity::Flagged { reason, at } => format!("flagged\u{1}{}\u{1}{at}", esc(reason)),
                Validity::Repaired { original_sql, at } => {
                    format!("repaired\u{1}{}\u{1}{at}", esc(original_sql))
                }
                Validity::Obsolete { reason, at } => {
                    format!("obsolete\u{1}{}\u{1}{at}", esc(reason))
                }
                Validity::Deleted => "deleted".to_string(),
            };
            let visibility = match r.visibility {
                Visibility::Private => "private".to_string(),
                Visibility::Group(g) => format!("group:{}", g.0),
                Visibility::Public => "public".to_string(),
            };
            writeln!(
                w,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                r.id.0,
                r.user.0,
                r.ts,
                r.session.0,
                esc(&r.raw_sql),
                visibility,
                validity,
                r.runtime.elapsed_us,
                r.runtime.cardinality,
                if r.runtime.success { 1 } else { 0 },
                r.quality,
            )
            .map_err(io_err)?;
        }
        writeln!(w, "[annotations]").map_err(io_err)?;
        for r in &self.records {
            for a in &r.annotations {
                writeln!(
                    w,
                    "{}\t{}\t{}\t{}\t{}",
                    r.id.0,
                    a.author.0,
                    a.at,
                    esc(&a.text),
                    a.fragment.as_deref().map(esc).unwrap_or_default(),
                )
                .map_err(io_err)?;
            }
        }
        writeln!(w, "[edges]").map_err(io_err)?;
        for e in &self.edges {
            let kind = match e.kind {
                EdgeKind::Evolution => "evolution",
                EdgeKind::Investigation => "investigation",
            };
            let labels: Vec<String> = e.edits.iter().map(|op| esc(&op.label())).collect();
            writeln!(
                w,
                "{}\t{}\t{}\t{}",
                e.from.0,
                e.to.0,
                kind,
                labels.join("\u{1}")
            )
            .map_err(io_err)?;
        }
        Ok(())
    }

    /// Restore from a snapshot produced by [`QueryStorage::snapshot`].
    ///
    /// Statements are re-parsed and features re-extracted; the text indexes
    /// and feature relations are rebuilt. Output summaries are *not*
    /// persisted (they are statistics, re-creatable by maintenance refresh).
    ///
    /// ```
    /// use cqms_core::storage::QueryStorage;
    ///
    /// let storage = QueryStorage::new();
    /// let mut buf = Vec::new();
    /// storage.snapshot(&mut buf).unwrap();
    /// let restored = QueryStorage::load(buf.as_slice()).unwrap();
    /// assert_eq!(restored.len(), storage.len());
    /// ```
    pub fn load(reader: impl BufRead) -> Result<QueryStorage, CqmsError> {
        let mut storage = QueryStorage::new();
        #[derive(PartialEq)]
        enum Section {
            Header,
            Records,
            Annotations,
            Edges,
        }
        let mut section = Section::Header;
        for line in reader.lines() {
            let line = line.map_err(io_err)?;
            if line.is_empty() {
                continue;
            }
            match line.as_str() {
                "cqms-snapshot v1" => continue,
                "[records]" => {
                    section = Section::Records;
                    continue;
                }
                "[annotations]" => {
                    section = Section::Annotations;
                    continue;
                }
                "[edges]" => {
                    section = Section::Edges;
                    continue;
                }
                _ => {}
            }
            match section {
                Section::Header => {
                    return Err(CqmsError::Snapshot(format!("unexpected line: {line}")))
                }
                Section::Records => {
                    let f: Vec<&str> = line.split('\t').collect();
                    if f.len() != 11 {
                        return Err(CqmsError::Snapshot(format!(
                            "bad record line ({} fields)",
                            f.len()
                        )));
                    }
                    let raw_sql = unesc(f[4]);
                    let statement = sqlparse::parse(&raw_sql).ok();
                    let (canonical_sql, sfp, tfp, feats) = match &statement {
                        Some(stmt) => (
                            sqlparse::to_sql(&sqlparse::canonicalize(stmt)),
                            sqlparse::structure_fingerprint(stmt),
                            sqlparse::template_fingerprint(stmt),
                            features::extract(stmt, None),
                        ),
                        None => (raw_sql.clone(), 0, 0, SyntacticFeatures::default()),
                    };
                    let visibility = match f[5] {
                        "private" => Visibility::Private,
                        "public" => Visibility::Public,
                        g => {
                            let gid = g
                                .strip_prefix("group:")
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| {
                                    CqmsError::Snapshot(format!("bad visibility `{g}`"))
                                })?;
                            Visibility::Group(GroupId(gid))
                        }
                    };
                    let vparts: Vec<&str> = f[6].split('\u{1}').collect();
                    let validity = match vparts[0] {
                        "valid" => Validity::Valid,
                        "deleted" => Validity::Deleted,
                        "flagged" => Validity::Flagged {
                            reason: unesc(vparts.get(1).unwrap_or(&"")),
                            at: vparts.get(2).and_then(|s| s.parse().ok()).unwrap_or(0),
                        },
                        "repaired" => Validity::Repaired {
                            original_sql: unesc(vparts.get(1).unwrap_or(&"")),
                            at: vparts.get(2).and_then(|s| s.parse().ok()).unwrap_or(0),
                        },
                        "obsolete" => Validity::Obsolete {
                            reason: unesc(vparts.get(1).unwrap_or(&"")),
                            at: vparts.get(2).and_then(|s| s.parse().ok()).unwrap_or(0),
                        },
                        other => {
                            return Err(CqmsError::Snapshot(format!("bad validity `{other}`")))
                        }
                    };
                    let record = QueryRecord {
                        id: QueryId(parse_field(f[0])?),
                        user: UserId(parse_field(f[1])?),
                        ts: parse_field(f[2])?,
                        session: SessionId(parse_field(f[3])?),
                        raw_sql,
                        statement,
                        canonical_sql,
                        structure_fp: sfp,
                        template_fp: tfp,
                        features: feats,
                        runtime: RuntimeFeatures {
                            elapsed_us: parse_field(f[7])?,
                            cardinality: parse_field(f[8])?,
                            success: f[9] == "1",
                            ..Default::default()
                        },
                        summary: OutputSummary::None,
                        visibility,
                        annotations: Vec::new(),
                        validity: validity.clone(),
                        quality: f[10]
                            .parse()
                            .map_err(|_| CqmsError::Snapshot("bad quality".into()))?,
                    };
                    // insert() recognises tombstones and skips indexing,
                    // so a restored delete needs no further work.
                    storage.insert(record);
                }
                Section::Annotations => {
                    let f: Vec<&str> = line.split('\t').collect();
                    if f.len() != 5 {
                        return Err(CqmsError::Snapshot("bad annotation line".into()));
                    }
                    let id = QueryId(parse_field(f[0])?);
                    let fragment = if f[4].is_empty() {
                        None
                    } else {
                        Some(unesc(f[4]))
                    };
                    storage.annotate(
                        id,
                        Annotation {
                            author: UserId(parse_field(f[1])?),
                            at: parse_field(f[2])?,
                            text: unesc(f[3]),
                            fragment,
                        },
                    )?;
                }
                Section::Edges => {
                    let f: Vec<&str> = line.split('\t').collect();
                    if f.len() != 4 {
                        return Err(CqmsError::Snapshot("bad edge line".into()));
                    }
                    // Edge labels are display artifacts; recompute real edits
                    // from the statements when both parse.
                    let from = QueryId(parse_field(f[0])?);
                    let to = QueryId(parse_field(f[1])?);
                    let kind = match f[2] {
                        "investigation" => EdgeKind::Investigation,
                        _ => EdgeKind::Evolution,
                    };
                    let edits = match (
                        storage.get(from).ok().and_then(|r| r.statement.clone()),
                        storage.get(to).ok().and_then(|r| r.statement.clone()),
                    ) {
                        (Some(a), Some(b)) => sqlparse::diff_statements(&a, &b),
                        _ => Vec::new(),
                    };
                    storage.add_edge(SessionEdge {
                        from,
                        to,
                        kind,
                        edits,
                    });
                }
            }
        }
        Ok(storage)
    }
}

fn parse_field<T: std::str::FromStr>(s: &str) -> Result<T, CqmsError> {
    s.parse()
        .map_err(|_| CqmsError::Snapshot(format!("bad numeric field `{s}`")))
}

fn io_err(e: std::io::Error) -> CqmsError {
    CqmsError::Snapshot(e.to_string())
}

/// Escape tabs/newlines/backslashes for the snapshot format.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\u{1}' => out.push_str("\\x01"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('x') => {
                // \x01
                chars.next();
                chars.next();
                out.push('\u{1}');
            }
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Build a record from its parts — the Profiler's constructor, also used
/// heavily by tests.
#[allow(clippy::too_many_arguments)]
pub fn make_record(
    id: QueryId,
    user: UserId,
    ts: u64,
    raw_sql: &str,
    statement: Option<sqlparse::Statement>,
    features: SyntacticFeatures,
    runtime: RuntimeFeatures,
    summary: OutputSummary,
    session: SessionId,
    visibility: Visibility,
) -> QueryRecord {
    let (canonical_sql, sfp, tfp) = match &statement {
        Some(stmt) => (
            sqlparse::to_sql(&sqlparse::canonicalize(stmt)),
            sqlparse::structure_fingerprint(stmt),
            sqlparse::template_fingerprint(stmt),
        ),
        None => (raw_sql.to_string(), 0, 0),
    };
    QueryRecord {
        id,
        user,
        ts,
        raw_sql: raw_sql.to_string(),
        statement,
        canonical_sql,
        structure_fp: sfp,
        template_fp: tfp,
        features,
        runtime,
        summary,
        session,
        visibility,
        annotations: Vec::new(),
        validity: Validity::Valid,
        quality: 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;

    fn record(id: u64, user: u32, ts: u64, sql: &str, session: u64) -> QueryRecord {
        let stmt = sqlparse::parse(sql).ok();
        let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
        make_record(
            QueryId(id),
            UserId(user),
            ts,
            sql,
            stmt,
            feats,
            RuntimeFeatures {
                elapsed_us: 1000,
                cardinality: 5,
                success: true,
                ..Default::default()
            },
            OutputSummary::None,
            SessionId(session),
            Visibility::Public,
        )
    }

    fn populated() -> QueryStorage {
        let mut s = QueryStorage::new();
        s.insert(record(
            0,
            1,
            10,
            "SELECT * FROM WaterTemp WHERE temp < 22",
            0,
        ));
        s.insert(record(
            1,
            1,
            40,
            "SELECT * FROM WaterTemp WHERE temp < 18",
            0,
        ));
        s.insert(record(
            2,
            2,
            5000,
            "SELECT * FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x",
            1,
        ));
        s
    }

    #[test]
    fn insert_and_lookup() {
        let s = populated();
        assert_eq!(s.len(), 3);
        assert_eq!(s.live_count(), 3);
        assert_eq!(s.get(QueryId(1)).unwrap().user, UserId(1));
        assert!(s.get(QueryId(9)).is_err());
    }

    #[test]
    fn feature_relations_queryable() {
        let s = populated();
        let r = s
            .meta_engine()
            .query("SELECT qid FROM DataSources WHERE relName = 'watersalinity'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].render(), "2");
    }

    #[test]
    fn text_indexes_wired() {
        let s = populated();
        let hits = s.text_index().search("salinity", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 2);
        assert_eq!(s.trigram_index().search("temp < 18"), vec![1]);
    }

    #[test]
    fn popularity_counts_templates() {
        let s = populated();
        // Queries 0 and 1 share a template (differ only in the constant).
        let fp = s.get(QueryId(0)).unwrap().template_fp;
        assert_eq!(s.popularity(fp), 2);
        assert_eq!(s.max_popularity(), 2);
    }

    #[test]
    fn sessions_group_queries() {
        let mut s = populated();
        assert_eq!(
            s.queries_in_session(SessionId(0)),
            vec![QueryId(0), QueryId(1)]
        );
        let fresh = s.new_session();
        assert_eq!(fresh, SessionId(2));
    }

    #[test]
    fn delete_tombstones_everywhere() {
        let mut s = populated();
        let fp = s.get(QueryId(0)).unwrap().template_fp;
        s.delete(QueryId(0)).unwrap();
        assert_eq!(s.live_count(), 2);
        assert!(!s.text_index().contains(0));
        assert_eq!(s.popularity(fp), 1);
        let r = s
            .meta_engine()
            .query("SELECT * FROM Queries WHERE qid = 0")
            .unwrap();
        assert!(r.rows.is_empty());
        // Record is retained for audit.
        assert_eq!(s.get(QueryId(0)).unwrap().validity, Validity::Deleted);
    }

    #[test]
    fn annotations_attach() {
        let mut s = populated();
        s.annotate(
            QueryId(1),
            Annotation {
                author: UserId(1),
                at: 50,
                text: "final temperature threshold".into(),
                fragment: Some("temp < 18".into()),
            },
        )
        .unwrap();
        assert_eq!(s.get(QueryId(1)).unwrap().annotations.len(), 1);
    }

    #[test]
    fn edges_recorded_per_session() {
        let mut s = populated();
        let a = s.get(QueryId(0)).unwrap().statement.clone().unwrap();
        let b = s.get(QueryId(1)).unwrap().statement.clone().unwrap();
        let edits = sqlparse::diff_statements(&a, &b);
        s.add_edge(SessionEdge {
            from: QueryId(0),
            to: QueryId(1),
            kind: EdgeKind::Evolution,
            edits,
        });
        let edges = s.session_edges(SessionId(0));
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].edits.len(), 1);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut s = populated();
        s.annotate(
            QueryId(2),
            Annotation {
                author: UserId(2),
                at: 60,
                text: "join\twith\ttabs and\nnewline".into(),
                fragment: None,
            },
        )
        .unwrap();
        let a = s.get(QueryId(0)).unwrap().statement.clone().unwrap();
        let b = s.get(QueryId(1)).unwrap().statement.clone().unwrap();
        s.add_edge(SessionEdge {
            from: QueryId(0),
            to: QueryId(1),
            kind: EdgeKind::Evolution,
            edits: sqlparse::diff_statements(&a, &b),
        });
        s.delete(QueryId(0)).unwrap();

        let mut buf = Vec::new();
        s.snapshot(&mut buf).unwrap();
        let restored = QueryStorage::load(&buf[..]).unwrap();

        assert_eq!(restored.len(), 3);
        assert_eq!(restored.live_count(), 2);
        assert_eq!(
            restored.get(QueryId(2)).unwrap().annotations[0].text,
            "join\twith\ttabs and\nnewline"
        );
        assert_eq!(restored.edges().len(), 1);
        assert_eq!(restored.edges()[0].edits.len(), 1);
        // Derived state rebuilt.
        assert_eq!(restored.trigram_index().search("temp < 18"), vec![1]);
        assert_eq!(
            restored.get(QueryId(1)).unwrap().template_fp,
            s.get(QueryId(1)).unwrap().template_fp
        );
        // Tombstone survives.
        assert!(!restored.text_index().contains(0));
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(QueryStorage::load("random garbage\n".as_bytes()).is_err());
        assert!(QueryStorage::load(
            "cqms-snapshot v1\n[records]\nnot\tenough\tfields\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn live_counter_tracks_all_transitions() {
        let mut s = populated();
        let scan = |s: &QueryStorage| s.iter().filter(|r| r.is_live()).count();
        assert_eq!(s.live_count(), scan(&s));
        // delete: live → dead; double-delete stays coherent.
        s.delete(QueryId(0)).unwrap();
        s.delete(QueryId(0)).unwrap();
        assert_eq!(s.live_count(), 2);
        // set_validity transitions in both directions.
        s.set_validity(
            QueryId(1),
            Validity::Flagged {
                reason: "schema drift".into(),
                at: 5,
            },
        )
        .unwrap();
        assert_eq!(s.live_count(), 1);
        s.set_validity(
            QueryId(1),
            Validity::Repaired {
                original_sql: "SELECT * FROM WaterTemp WHERE temp < 18".into(),
                at: 6,
            },
        )
        .unwrap();
        assert_eq!(s.live_count(), 2);
        // Tombstoning is delete()'s job, in both directions.
        assert!(s.set_validity(QueryId(1), Validity::Deleted).is_err());
        assert!(s.set_validity(QueryId(0), Validity::Valid).is_err());
        assert_eq!(s.live_count(), 2);
        // Snapshot → load preserves the counter (incl. tombstones).
        let mut buf = Vec::new();
        s.snapshot(&mut buf).unwrap();
        let restored = QueryStorage::load(&buf[..]).unwrap();
        assert_eq!(restored.live_count(), s.live_count());
        assert_eq!(restored.live_count(), scan(&restored));
    }

    #[test]
    fn posting_index_follows_insert_delete_reindex() {
        let mut s = populated();
        let sig = s.signature(QueryId(2)).unwrap().clone();
        // Every feature of a live record posts to its qid.
        for fid in sig.feature_ids() {
            assert!(s.postings().get(&fid).unwrap().contains(2));
        }
        // Candidate generation sees records sharing the probe's features.
        let probe = s.probe_signature(s.get(QueryId(0)).unwrap());
        let cands = s.candidate_ids(&probe);
        assert!(cands.contains(&0) && cands.contains(&1));
        assert!(cands.contains(&2), "join shares watertemp");
        // Tombstoning marks the entries stale everywhere (the canonical
        // live view drops them at once); the background compaction pass
        // then removes them physically.
        s.delete(QueryId(2)).unwrap();
        for fid in sig.feature_ids() {
            assert!(!s.live_posting_ids(fid).contains(&2));
        }
        s.compact_postings();
        for fid in sig.feature_ids() {
            assert!(!s
                .postings()
                .get(&fid)
                .map(|l| l.contains(2))
                .unwrap_or(false));
        }
        // Flagging unposts too (non-live records cost probes nothing);
        // repairing re-posts.
        let sig0 = s.signature(QueryId(0)).unwrap().clone();
        s.set_validity(
            QueryId(0),
            Validity::Flagged {
                reason: "drift".into(),
                at: 1,
            },
        )
        .unwrap();
        s.compact_postings();
        for fid in sig0.feature_ids() {
            assert!(!s
                .postings()
                .get(&fid)
                .map(|l| l.contains(0))
                .unwrap_or(false));
        }
        s.set_validity(
            QueryId(0),
            Validity::Repaired {
                original_sql: "x".into(),
                at: 2,
            },
        )
        .unwrap();
        for fid in sig0.feature_ids() {
            assert!(s.postings().get(&fid).unwrap().contains(0));
        }
    }

    #[test]
    fn last_query_of_user() {
        let s = populated();
        assert_eq!(s.last_query_of(UserId(1)).unwrap().id, QueryId(1));
        assert!(s.last_query_of(UserId(9)).is_none());
    }

    /// Regression for the stale-posting leak: hammering insert/delete
    /// cycles must not grow posting lists without bound — transitions
    /// queue over-threshold lists, and the background maintenance pass
    /// (here run once per round, as the miner epoch does) compacts them,
    /// so list length stays within a constant factor of the live
    /// membership while the transitions themselves stay O(1) per list.
    #[test]
    fn posting_lists_stay_bounded_under_churn() {
        let mut s = QueryStorage::new();
        let mut next_id = 0u64;
        // 12 rounds of: insert a batch sharing one hot feature set, then
        // delete most of it (plus some flag/repair churn).
        for round in 0..12u64 {
            let start = next_id;
            for i in 0..50u64 {
                s.insert(record(
                    next_id,
                    1,
                    round * 1000 + i,
                    "SELECT * FROM WaterTemp WHERE temp < 18",
                    round,
                ));
                next_id += 1;
            }
            for q in start..start + 45 {
                s.delete(QueryId(q)).unwrap();
            }
            // Flag + repair the survivors' head, exercising the
            // dead→alive revival path on stale entries.
            s.set_validity(
                QueryId(start + 45),
                Validity::Flagged {
                    reason: "drift".into(),
                    at: round,
                },
            )
            .unwrap();
            s.set_validity(
                QueryId(start + 45),
                Validity::Repaired {
                    original_sql: "x".into(),
                    at: round,
                },
            )
            .unwrap();
            // The per-epoch background pass drains the compaction queue.
            s.compact_postings();
        }
        let live = s.live_count();
        assert_eq!(live, 12 * 5);
        for (fid, list) in s.postings() {
            // Invariant maintained by the background compaction pass:
            // stale entries are at most a quarter of any list…
            assert!(
                u64::from(list.dead()) * 4 <= list.len() as u64,
                "feature {fid}: {} dead of {}",
                list.dead(),
                list.len()
            );
            // …and every live id with this feature is present, while the
            // list never exceeds live + tolerated-stale.
            let live_ids = s.live_posting_ids(*fid);
            assert!(list.len() <= live_ids.len() + live_ids.len() / 3 + 1);
            for q in live_ids {
                assert!(list.contains(q));
            }
        }
        // Candidate generation still returns every live sharer.
        let probe = s.probe_signature(s.get(QueryId(next_id - 1)).unwrap());
        let cands = s.candidate_ids(&probe);
        for r in s.iter_live() {
            assert!(cands.binary_search(&r.id.0).is_ok());
        }
    }

    /// The registry generation lifecycle: inserts land in the mutable
    /// head, a rebuild seals them into a published generation with one
    /// atomic swap, reindex logs an override + schedules, and crossing
    /// the tombstone threshold schedules — probes never rebuild inline.
    #[test]
    fn index_registry_lifecycle() {
        use std::sync::atomic::Ordering;
        let mut s = populated();
        // Fresh store: generation 0 (empty sealed), everything in the head.
        assert_eq!(s.index_generation(), 0);
        assert!(!s.index_rebuild_pending());
        assert_eq!(s.indexes().sealed().tree.len(), 0);
        assert_eq!(s.indexes().head_tree().len(), 3);
        // Seal: one rebuild publishes generation 1 and empties the head.
        s.schedule_index_rebuild();
        assert!(s.run_index_maintenance());
        assert_eq!(s.index_generation(), 1);
        assert_eq!(s.indexes().sealed().tree.len(), 3);
        assert_eq!(s.indexes().head_tree().len(), 0);
        assert!(s.indexes().sealed().groups.len() >= 2);
        // Inserts go to the head; the sealed generation is untouched.
        s.insert(record(3, 1, 60, "SELECT * FROM Lakes", 2));
        assert_eq!(s.indexes().sealed().tree.len(), 3);
        assert_eq!(s.indexes().head_tree().len(), 1);
        // Flagging is query-time filtering only — no index change.
        s.set_validity(
            QueryId(0),
            Validity::Flagged {
                reason: "drift".into(),
                at: 1,
            },
        )
        .unwrap();
        assert!(!s.index_rebuild_pending());
        // Reindex: override logged + rebuild scheduled; nothing dropped.
        s.reindex(QueryId(1)).unwrap();
        assert!(s.index_rebuild_pending());
        assert!(s.indexes().overridden(1));
        assert_eq!(s.index_generation(), 1, "no inline rebuild");
        // The miner-epoch pass publishes generation 2 and retires the
        // override; the mid-head insert was replayed in.
        assert!(s.run_index_maintenance());
        assert_eq!(s.index_generation(), 2);
        assert!(!s.indexes().overridden(1));
        assert_eq!(s.indexes().sealed().tree.len(), 4);
        assert_eq!(s.indexes().head_tree().len(), 0);
        // Tombstones only *schedule* past the 25% threshold.
        s.delete(QueryId(0)).unwrap();
        assert!(!s.index_rebuild_pending()); // 1/4 ≤ threshold
        s.delete(QueryId(1)).unwrap();
        assert!(s.index_rebuild_pending()); // 2/4 > threshold
        assert_eq!(s.index_generation(), 2, "rebuild deferred to the epoch");
        assert!(s.run_index_maintenance());
        assert_eq!(s.index_generation(), 3);
        assert_eq!(s.indexes().sealed().tree.len(), 2);
        assert_eq!(
            s.metric_stats().rebuilds_completed.load(Ordering::Relaxed),
            3
        );
    }

    /// A refreshed summary must flow through the sealed setter, which
    /// rebuilds the signature's output hashes (so the query-by-data
    /// screens stay coherent) and schedules a registry rebuild.
    #[test]
    fn refresh_summary_routes_through_reindex() {
        let mut s = populated();
        assert!(s.signature(QueryId(0)).unwrap().output_rows.is_none());
        s.refresh_summary(
            QueryId(0),
            OutputSummary::Full {
                columns: vec!["lake".into()],
                rows: vec![vec!["Lake Washington".into()]],
            },
        )
        .unwrap();
        let sig = s.signature(QueryId(0)).unwrap();
        assert!(sig.may_contain_cell("lake washington"));
        assert!(sig.summary_coherent(&s.get(QueryId(0)).unwrap().summary));
        assert!(s.index_rebuild_pending(), "refresh schedules a rebuild");
        assert!(s.indexes().overridden(0));
    }
}
