//! The Query Profiler (Figure 4, §4.1).
//!
//! Sits in front of the DBMS on the Traditional Interaction path: it forwards
//! each SQL statement to the engine, then logs the query — raw text,
//! extracted features, runtime statistics, an adaptive output summary — into
//! the Query Storage. It also assigns queries to sessions *online* (gap +
//! similarity heuristic) and fires the §2.1 annotation-request trigger for
//! hard-to-reuse queries.

use crate::config::{CqmsConfig, ProfilingDepth};
use crate::error::CqmsError;
use crate::features::{self, SyntacticFeatures};
use crate::model::*;
use crate::storage::{make_record, QueryStorage};
use relstore::stats::Reservoir;
use relstore::{Engine, QueryResult, Value};
use std::collections::HashMap;

/// Outcome of profiling one statement.
#[derive(Debug)]
pub struct ProfiledQuery {
    /// Id assigned to the logged record.
    pub id: QueryId,
    /// The engine result (present when execution succeeded).
    pub result: Option<QueryResult>,
    /// The engine error (present when execution failed; the query is logged
    /// either way — failed attempts matter to the correction engine, §2.3).
    pub error: Option<relstore::EngineError>,
    /// §2.1: the CQMS "occasionally even requests query annotations … for
    /// queries that are difficult to re-use without proper documentation".
    pub annotation_requested: bool,
    /// True when this query started a new session.
    pub new_session: bool,
}

/// Per-user online session state.
struct UserSessionState {
    session: SessionId,
    last_ts: u64,
    last_query: QueryId,
}

/// The profiler. Owns only light state (per-user session cursor); storage
/// and engine are passed per call so the server can coordinate borrows.
pub struct Profiler {
    user_state: HashMap<UserId, UserSessionState>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// A profiler with no per-user session state yet.
    pub fn new() -> Self {
        Profiler {
            user_state: HashMap::new(),
        }
    }

    /// Profile and execute one statement on behalf of `user` at trace time
    /// `ts` (seconds). This is the Traditional Interaction entry point.
    // The argument list mirrors the paper's Figure 4 wiring (config, storage,
    // engine, plus the per-query inputs); bundling them into a context struct
    // would add indirection for the single `Cqms::run_query_at` caller.
    #[allow(clippy::too_many_arguments)]
    pub fn profile(
        &mut self,
        config: &CqmsConfig,
        storage: &mut QueryStorage,
        engine: &mut Engine,
        user: UserId,
        visibility: Visibility,
        sql: &str,
        ts: u64,
    ) -> Result<ProfiledQuery, CqmsError> {
        let id = QueryId(storage.len() as u64);

        // 1. Parse. A parse failure is still logged (success = false).
        let statement = sqlparse::parse(sql).ok();

        // 2. Execute through the DBMS.
        let (result, error, runtime) = match &statement {
            Some(stmt) => match engine.execute_statement(stmt) {
                Ok(r) => {
                    let rt = RuntimeFeatures {
                        elapsed_us: r.metrics.elapsed.as_micros() as u64,
                        cardinality: r.metrics.cardinality,
                        rows_scanned: r.metrics.rows_scanned,
                        plan: r.metrics.plan.clone(),
                        logical_time: r.metrics.logical_time,
                        success: true,
                        error: None,
                    };
                    (Some(r), None, rt)
                }
                Err(e) => (
                    None,
                    Some(e.clone()),
                    RuntimeFeatures {
                        logical_time: engine.catalog.now(),
                        success: false,
                        error: Some(e.to_string()),
                        ..Default::default()
                    },
                ),
            },
            None => (
                None,
                None,
                RuntimeFeatures {
                    logical_time: engine.catalog.now(),
                    success: false,
                    error: Some("parse error".to_string()),
                    ..Default::default()
                },
            ),
        };

        // 3. Feature extraction (depth ≥ Features).
        let feats = match (&statement, config.profiling_depth) {
            (Some(stmt), ProfilingDepth::Features | ProfilingDepth::Full) => {
                features::extract(stmt, Some(&engine.catalog))
            }
            _ => SyntacticFeatures::default(),
        };

        // 4. Adaptive output summarisation (§4.1, depth = Full).
        let summary = match (&result, config.profiling_depth) {
            (Some(r), ProfilingDepth::Full) if !r.columns.is_empty() => summarize_output(config, r),
            _ => OutputSummary::None,
        };

        // 5. Online session assignment.
        let (session, new_session, prev) = self.assign_session(config, storage, user, ts, &feats);

        // 6. Annotation-request trigger (§2.1).
        let annotation_requested = feats.tables.len() >= config.annotate_table_threshold
            || (config.annotate_on_subquery && feats.has_subquery);

        // 7. Log the record + session edge.
        let record = make_record(
            id, user, ts, sql, statement, feats, runtime, summary, session, visibility,
        );
        let stmt_for_edge = record.statement.clone();
        storage.insert(record);
        if let (Some(prev_id), Some(cur_stmt)) = (prev, stmt_for_edge) {
            if let Ok(prev_rec) = storage.get(prev_id) {
                if let Some(prev_stmt) = prev_rec.statement.clone() {
                    let edits = sqlparse::diff_statements(&prev_stmt, &cur_stmt);
                    storage.add_edge(SessionEdge {
                        from: prev_id,
                        to: id,
                        kind: EdgeKind::Evolution,
                        edits,
                    });
                }
            }
        }
        self.user_state.insert(
            user,
            UserSessionState {
                session,
                last_ts: ts,
                last_query: id,
            },
        );

        Ok(ProfiledQuery {
            id,
            result,
            error,
            annotation_requested,
            new_session,
        })
    }

    /// Online session heuristic: continue the user's current session when
    /// the idle gap is small; beyond the gap, only a strong feature overlap
    /// (same analysis resumed) keeps the session alive.
    fn assign_session(
        &mut self,
        config: &CqmsConfig,
        storage: &mut QueryStorage,
        user: UserId,
        ts: u64,
        feats: &SyntacticFeatures,
    ) -> (SessionId, bool, Option<QueryId>) {
        match self.user_state.get(&user) {
            Some(state) if ts >= state.last_ts => {
                let gap = ts - state.last_ts;
                if gap <= config.session_idle_gap_secs {
                    (state.session, false, Some(state.last_query))
                } else {
                    // Gap exceeded: check similarity against the previous
                    // query before breaking the session.
                    let similar = storage
                        .get(state.last_query)
                        .ok()
                        .map(|prev| table_overlap(&prev.features, feats))
                        .unwrap_or(0.0);
                    if gap <= 3 * config.session_idle_gap_secs
                        && similar >= 1.0 - config.session_similarity_threshold
                    {
                        (state.session, false, Some(state.last_query))
                    } else {
                        (storage.new_session(), true, None)
                    }
                }
            }
            _ => (storage.new_session(), true, None),
        }
    }
}

/// Table-set Jaccard similarity between two feature sets.
fn table_overlap(a: &SyntacticFeatures, b: &SyntacticFeatures) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<&String> = a.tables.iter().collect();
    let sb: HashSet<&String> = b.tables.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = (sa.len() + sb.len()) as f64 - inter;
    inter / union
}

/// §4.1's adaptive rule: store the full output when it is small relative to
/// how expensive the query was; otherwise store a deterministic reservoir
/// sample. Shared with the maintenance statistics refresh, whose summary
/// updates flow through `QueryStorage::refresh_summary`.
pub(crate) fn summarize_output(config: &CqmsConfig, r: &QueryResult) -> OutputSummary {
    let budget = config.full_output_budget(r.metrics.elapsed.as_micros() as u64);
    let columns = r.columns.clone();
    if (r.rows.len() as u64) <= budget {
        OutputSummary::Full {
            columns,
            rows: r
                .rows
                .iter()
                .map(|row| row.iter().map(Value::render).collect())
                .collect(),
        }
    } else {
        // Reservoir-sample row *indices* to avoid cloning the whole result
        // (the overhead matters: this path runs on every large query).
        let mut res = Reservoir::new(config.output_sample_size, config.seed);
        for i in 0..r.rows.len() {
            res.offer(vec![Value::Int(i as i64)]);
        }
        OutputSummary::Sample {
            columns,
            rows: res
                .into_items()
                .iter()
                .map(|idx| {
                    let i = idx[0].as_i64().unwrap() as usize;
                    r.rows[i].iter().map(Value::render).collect()
                })
                .collect(),
            total_rows: r.rows.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Domain;

    fn setup() -> (CqmsConfig, QueryStorage, Engine, Profiler) {
        let mut engine = Engine::new();
        Domain::Lakes.setup(&mut engine, 100, 3);
        (
            CqmsConfig::default(),
            QueryStorage::new(),
            engine,
            Profiler::new(),
        )
    }

    #[test]
    fn profiles_successful_query() {
        let (cfg, mut st, mut en, mut p) = setup();
        let out = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELECT lake, temp FROM WaterTemp WHERE temp < 18",
                100,
            )
            .unwrap();
        assert!(out.result.is_some());
        assert!(out.new_session);
        let rec = st.get(out.id).unwrap();
        assert!(rec.runtime.success);
        assert!(rec.runtime.cardinality > 0);
        assert!(!rec.runtime.plan.is_empty());
        assert!(rec.features.tables.contains(&"watertemp".to_string()));
        assert!(matches!(
            rec.summary,
            OutputSummary::Full { .. } | OutputSummary::Sample { .. }
        ));
    }

    #[test]
    fn failed_queries_are_still_logged() {
        let (cfg, mut st, mut en, mut p) = setup();
        let out = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELECT * FROM NoSuchTable",
                100,
            )
            .unwrap();
        assert!(out.result.is_none());
        assert!(out.error.is_some());
        let rec = st.get(out.id).unwrap();
        assert!(!rec.runtime.success);
        // Unparseable text also logs.
        let out = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELEC nonsense",
                110,
            )
            .unwrap();
        let rec = st.get(out.id).unwrap();
        assert!(rec.statement.is_none());
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn sessions_follow_gaps() {
        let (cfg, mut st, mut en, mut p) = setup();
        let q = "SELECT * FROM WaterTemp WHERE temp < 18";
        let a = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                q,
                100,
            )
            .unwrap();
        let b = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                q,
                200,
            )
            .unwrap();
        // Large gap + different tables → new session.
        let c = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELECT * FROM CityLocations",
                200 + 10 * cfg.session_idle_gap_secs,
            )
            .unwrap();
        let sa = st.get(a.id).unwrap().session;
        let sb = st.get(b.id).unwrap().session;
        let sc = st.get(c.id).unwrap().session;
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
        assert!(!b.new_session);
        assert!(c.new_session);
    }

    #[test]
    fn moderate_gap_same_tables_continues_session() {
        let (cfg, mut st, mut en, mut p) = setup();
        let a = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELECT * FROM WaterTemp WHERE temp < 18",
                100,
            )
            .unwrap();
        // Gap between 1× and 3× the idle threshold, identical table set.
        let b = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELECT * FROM WaterTemp WHERE temp < 12",
                100 + 2 * cfg.session_idle_gap_secs,
            )
            .unwrap();
        assert_eq!(st.get(a.id).unwrap().session, st.get(b.id).unwrap().session);
    }

    #[test]
    fn users_have_independent_sessions() {
        let (cfg, mut st, mut en, mut p) = setup();
        let q = "SELECT * FROM WaterTemp";
        let a = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                q,
                100,
            )
            .unwrap();
        let b = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(2),
                Visibility::Public,
                q,
                101,
            )
            .unwrap();
        assert_ne!(st.get(a.id).unwrap().session, st.get(b.id).unwrap().session);
    }

    #[test]
    fn session_edges_carry_fig2_edits() {
        let (cfg, mut st, mut en, mut p) = setup();
        p.profile(
            &cfg,
            &mut st,
            &mut en,
            UserId(1),
            Visibility::Public,
            "SELECT * FROM WaterTemp WHERE temp < 22",
            100,
        )
        .unwrap();
        p.profile(
            &cfg,
            &mut st,
            &mut en,
            UserId(1),
            Visibility::Public,
            "SELECT * FROM WaterTemp WHERE temp < 18",
            150,
        )
        .unwrap();
        let edges = st.edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].edits.len(), 1);
        let label = edges[0].edits[0].label();
        assert!(label.contains("22") && label.contains("18"), "{label}");
    }

    #[test]
    fn annotation_trigger_follows_config() {
        let (cfg, mut st, mut en, mut p) = setup();
        let simple = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELECT * FROM WaterTemp",
                100,
            )
            .unwrap();
        assert!(!simple.annotation_requested);
        let three_tables = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L \
                 WHERE S.loc_x = T.loc_x AND T.loc_x = L.loc_x",
                110,
            )
            .unwrap();
        assert!(three_tables.annotation_requested);
        let nested = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELECT * FROM WaterTemp WHERE lake IN (SELECT lake FROM Lakes)",
                120,
            )
            .unwrap();
        assert!(nested.annotation_requested);
    }

    #[test]
    fn output_summary_is_adaptive() {
        let (mut cfg, mut st, mut en, mut p) = setup();
        cfg.full_output_min_rows = 5;
        cfg.full_output_rows_per_ms = 0.0; // force the row-count rule
        cfg.output_sample_size = 4;
        // Small output → Full.
        let small = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELECT DISTINCT lake FROM WaterTemp",
                100,
            )
            .unwrap();
        assert!(matches!(
            st.get(small.id).unwrap().summary,
            OutputSummary::Full { .. }
        ));
        // Large output (100 rows > 5) → Sample of 4.
        let large = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELECT * FROM WaterTemp",
                110,
            )
            .unwrap();
        match &st.get(large.id).unwrap().summary {
            OutputSummary::Sample {
                rows, total_rows, ..
            } => {
                assert_eq!(rows.len(), 4);
                assert_eq!(*total_rows, 100);
            }
            other => panic!("expected sample, got {other:?}"),
        }
    }

    #[test]
    fn text_only_depth_skips_features_and_summary() {
        let (mut cfg, mut st, mut en, mut p) = setup();
        cfg.profiling_depth = ProfilingDepth::Text;
        let out = p
            .profile(
                &cfg,
                &mut st,
                &mut en,
                UserId(1),
                Visibility::Public,
                "SELECT * FROM WaterTemp WHERE temp < 18",
                100,
            )
            .unwrap();
        let rec = st.get(out.id).unwrap();
        assert!(rec.features.tables.is_empty());
        assert_eq!(rec.summary, OutputSummary::None);
        // Raw text search still works.
        assert!(!st.trigram_index().search("temp < 18").is_empty());
    }
}
