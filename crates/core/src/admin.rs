//! Administrative Interaction Mode (§2.4): users, groups, access control.
//!
//! "Clear access control rules must be set to restrict knowledge transfer to
//! only group members collaborating with each other" (§1). The directory
//! tracks users and group membership; every meta-query result is filtered
//! through [`Directory::can_see`].

use crate::error::CqmsError;
use crate::model::{GroupId, QueryRecord, UserId, Visibility};
use std::collections::HashMap;

/// A registered user.
#[derive(Debug, Clone)]
pub struct UserInfo {
    /// The user's id.
    pub id: UserId,
    /// Display name.
    pub name: String,
    /// Groups the user belongs to.
    pub groups: Vec<GroupId>,
    /// Administrators may manage any query and the system tunables.
    pub is_admin: bool,
}

/// Users and groups.
#[derive(Debug, Default, Clone)]
pub struct Directory {
    users: HashMap<UserId, UserInfo>,
    groups: HashMap<GroupId, String>,
    next_user: u32,
    next_group: u32,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Register a user; the first registered user becomes an administrator.
    pub fn create_user(&mut self, name: &str) -> UserId {
        let id = UserId(self.next_user);
        self.next_user += 1;
        self.users.insert(
            id,
            UserInfo {
                id,
                name: name.to_string(),
                groups: Vec::new(),
                is_admin: id.0 == 0,
            },
        );
        id
    }

    /// Create a collaboration group.
    pub fn create_group(&mut self, name: &str) -> GroupId {
        let id = GroupId(self.next_group);
        self.next_group += 1;
        self.groups.insert(id, name.to_string());
        id
    }

    /// Add a user to a group (idempotent).
    pub fn join_group(&mut self, user: UserId, group: GroupId) -> Result<(), CqmsError> {
        if !self.groups.contains_key(&group) {
            return Err(CqmsError::Admin(format!("unknown group {group}")));
        }
        let u = self
            .users
            .get_mut(&user)
            .ok_or_else(|| CqmsError::Admin(format!("unknown user {user}")))?;
        if !u.groups.contains(&group) {
            u.groups.push(group);
        }
        Ok(())
    }

    /// Remove a user from a group.
    pub fn leave_group(&mut self, user: UserId, group: GroupId) -> Result<(), CqmsError> {
        let u = self
            .users
            .get_mut(&user)
            .ok_or_else(|| CqmsError::Admin(format!("unknown user {user}")))?;
        u.groups.retain(|g| *g != group);
        Ok(())
    }

    /// Look up a user.
    pub fn user(&self, id: UserId) -> Option<&UserInfo> {
        self.users.get(&id)
    }

    /// A group's display name.
    pub fn group_name(&self, id: GroupId) -> Option<&str> {
        self.groups.get(&id).map(String::as_str)
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Is this user an administrator?
    pub fn is_admin(&self, user: UserId) -> bool {
        self.users.get(&user).map(|u| u.is_admin).unwrap_or(false)
    }

    /// Is this user a member of the group?
    pub fn in_group(&self, user: UserId, group: GroupId) -> bool {
        self.users
            .get(&user)
            .map(|u| u.groups.contains(&group))
            .unwrap_or(false)
    }

    /// §2.4 visibility rule. Unregistered viewers see only public queries
    /// (and their own — identity is by id, registration optional to ease
    /// embedding).
    pub fn can_see(&self, viewer: UserId, record: &QueryRecord) -> bool {
        if viewer == record.user || self.is_admin(viewer) {
            return true;
        }
        match record.visibility {
            Visibility::Public => true,
            Visibility::Private => false,
            Visibility::Group(g) => self.in_group(viewer, g),
        }
    }

    /// May `actor` modify (annotate from others' behalf, delete, re-ACL)
    /// the record?
    pub fn can_modify(&self, actor: UserId, record: &QueryRecord) -> bool {
        actor == record.user || self.is_admin(actor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::*;
    use crate::storage::make_record;

    fn record(owner: u32, vis: Visibility) -> QueryRecord {
        make_record(
            QueryId(0),
            UserId(owner),
            0,
            "SELECT 1",
            None,
            Default::default(),
            Default::default(),
            OutputSummary::None,
            SessionId(0),
            vis,
        )
    }

    #[test]
    fn first_user_is_admin() {
        let mut d = Directory::new();
        let root = d.create_user("root");
        let alice = d.create_user("alice");
        assert!(d.is_admin(root));
        assert!(!d.is_admin(alice));
    }

    #[test]
    fn visibility_matrix() {
        let mut d = Directory::new();
        let root = d.create_user("root");
        let alice = d.create_user("alice");
        let bob = d.create_user("bob");
        let carol = d.create_user("carol");
        let lab = d.create_group("limnology-lab");
        d.join_group(alice, lab).unwrap();
        d.join_group(bob, lab).unwrap();

        let private = record(alice.0, Visibility::Private);
        let grouped = record(alice.0, Visibility::Group(lab));
        let public = record(alice.0, Visibility::Public);

        // Owner always sees.
        assert!(d.can_see(alice, &private));
        // Group members see group queries; outsiders don't.
        assert!(d.can_see(bob, &grouped));
        assert!(!d.can_see(carol, &grouped));
        assert!(!d.can_see(bob, &private));
        // Everyone sees public.
        assert!(d.can_see(carol, &public));
        // Admin sees everything.
        assert!(d.can_see(root, &private));
    }

    #[test]
    fn modification_rights() {
        let mut d = Directory::new();
        let root = d.create_user("root");
        let alice = d.create_user("alice");
        let bob = d.create_user("bob");
        let rec = record(alice.0, Visibility::Public);
        assert!(d.can_modify(alice, &rec));
        assert!(d.can_modify(root, &rec));
        assert!(!d.can_modify(bob, &rec));
    }

    #[test]
    fn group_membership_lifecycle() {
        let mut d = Directory::new();
        let u = d.create_user("u");
        let g = d.create_group("g");
        assert!(!d.in_group(u, g));
        d.join_group(u, g).unwrap();
        assert!(d.in_group(u, g));
        // Idempotent join.
        d.join_group(u, g).unwrap();
        assert_eq!(d.user(u).unwrap().groups.len(), 1);
        d.leave_group(u, g).unwrap();
        assert!(!d.in_group(u, g));
        // Unknown ids error.
        assert!(d.join_group(UserId(99), g).is_err());
        assert!(d.join_group(u, GroupId(99)).is_err());
    }
}
