//! The Query Maintenance component (Figure 4, §4.4).
//!
//! Three duties:
//!
//! 1. **Schema-evolution scan** — find stored queries invalidated by DDL
//!    ("comparing the timestamp of a query with that of the last schema
//!    modification on any input relation"), *repair* them automatically when
//!    the change was a rename (AST rewrite + re-validation), flag or
//!    obsolete them otherwise;
//! 2. **Statistics refresh** — re-execute stored queries' runtime statistics
//!    only when the underlying data distribution drifted ("re-execute
//!    queries only when there is reason to believe their statistics have
//!    significantly changed"), popularity-first, under a budget. A
//!    re-execution also refreshes the stored output summary — through
//!    [`crate::storage::QueryStorage::refresh_summary`] (→ `reindex` → a
//!    scheduled registry rebuild), never by mutating the record in place,
//!    so the signature output screens can't silently go stale;
//! 3. **Quality scoring** — maintain each query's quality measure used by
//!    the ranking functions.

use crate::config::{CqmsConfig, ProfilingDepth};
use crate::error::CqmsError;
use crate::model::*;
use crate::storage::QueryStorage;
use relstore::{Engine, SchemaChangeKind, TableStats};
use sqlparse::ast::Statement;
use std::collections::HashMap;

/// Outcome of one maintenance scan.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MaintenanceReport {
    /// Queries examined (live queries with parsed statements).
    pub examined: usize,
    /// Queries whose input tables changed after they ran.
    pub affected: usize,
    /// Successfully repaired (rename rewrites that re-validate).
    pub repaired: Vec<QueryId>,
    /// Flagged as possibly broken (still failing validation).
    pub flagged: Vec<QueryId>,
    /// Confirmed irreparable (e.g. a dropped table).
    pub obsolete: Vec<QueryId>,
}

/// Scan for schema-invalidated queries and repair what is repairable.
pub fn scan_schema_changes(
    storage: &mut QueryStorage,
    engine: &Engine,
) -> Result<MaintenanceReport, CqmsError> {
    let mut report = MaintenanceReport::default();
    let ids: Vec<QueryId> = storage
        .iter()
        .filter(|r| r.is_live() && r.statement.is_some())
        .map(|r| r.id)
        .collect();

    for id in ids {
        report.examined += 1;
        let (mut stmt, logical_time, tables) = {
            let r = storage.get(id)?;
            (
                r.statement.clone().unwrap(),
                r.runtime.logical_time,
                r.features.tables.clone(),
            )
        };

        // Gather changes to any input relation after the query ran. Renames
        // chain (a table renamed twice), so follow the log in order.
        let mut relevant: Vec<(u64, String, SchemaChangeKind)> = Vec::new();
        let mut names = tables.clone();
        for change in engine.catalog.changes() {
            if change.at <= logical_time {
                continue;
            }
            let cl = change.table.to_ascii_lowercase();
            if names.contains(&cl) {
                relevant.push((change.at, cl.clone(), change.kind.clone()));
                if let SchemaChangeKind::RenamedTable { to } = &change.kind {
                    names.push(to.to_ascii_lowercase());
                }
            }
        }
        if relevant.is_empty() {
            continue;
        }
        report.affected += 1;

        // Apply rename repairs in log order.
        let mut hopeless = false;
        for (_, table, kind) in &relevant {
            match kind {
                SchemaChangeKind::RenamedColumn { from, to } => {
                    if let Statement::Select(s) = &mut stmt {
                        sqlparse::visit::rewrite_columns(s, table, from, to);
                    }
                }
                SchemaChangeKind::RenamedTable { to } => {
                    if let Statement::Select(s) = &mut stmt {
                        sqlparse::visit::rewrite_tables(s, table, to);
                    }
                }
                SchemaChangeKind::DroppedTable => hopeless = true,
                SchemaChangeKind::DroppedColumn { .. }
                | SchemaChangeKind::AddedColumn { .. }
                | SchemaChangeKind::CreatedTable => {}
            }
        }

        let at = engine.catalog.now();
        if hopeless {
            storage.set_validity(
                id,
                Validity::Obsolete {
                    reason: "input relation was dropped".into(),
                    at,
                },
            )?;
            report.obsolete.push(id);
            continue;
        }

        // Re-validate the (possibly rewritten) statement.
        match engine.validates(&stmt) {
            Ok(()) => {
                let new_sql = sqlparse::to_sql(&stmt);
                let original = {
                    let r = storage.get_mut(id)?;
                    if new_sql != r.raw_sql {
                        let original = std::mem::replace(&mut r.raw_sql, new_sql);
                        let old_tfp = r.template_fp;
                        r.statement = Some(stmt.clone());
                        r.canonical_sql = sqlparse::to_sql(&sqlparse::canonicalize(&stmt));
                        r.structure_fp = sqlparse::structure_fingerprint(&stmt);
                        r.template_fp = sqlparse::template_fingerprint(&stmt);
                        r.features = crate::features::extract(&stmt, Some(&engine.catalog));
                        Some((original, old_tfp, r.template_fp))
                    } else {
                        None
                    }
                };
                if let Some((original_sql, old_tfp, new_tfp)) = original {
                    // Popularity follows the query to its new template.
                    storage.retemplate(old_tfp, new_tfp);
                    storage.set_validity(id, Validity::Repaired { original_sql, at })?;
                    storage.reindex(id)?;
                    report.repaired.push(id);
                }
                // Still valid untouched: a benign change (e.g. ADD COLUMN).
            }
            Err(e) => {
                storage.set_validity(
                    id,
                    Validity::Flagged {
                        reason: e.to_string(),
                        at,
                    },
                )?;
                report.flagged.push(id);
            }
        }
    }
    Ok(report)
}

/// Outcome of one statistics-refresh epoch.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RefreshReport {
    /// Tables whose statistics drifted beyond the threshold.
    pub drifted_tables: Vec<String>,
    /// Queries the naïve policy would re-execute (all touching any table).
    pub naive_rerun_count: usize,
    /// Queries actually re-executed under the drift-triggered policy.
    pub refreshed: Vec<QueryId>,
    /// Queries skipped due to the per-epoch budget.
    pub skipped_over_budget: usize,
}

/// Drift-triggered statistics refresh (§4.4). `baseline` carries the table
/// statistics captured at the previous epoch; it is updated in place.
pub fn refresh_statistics(
    storage: &mut QueryStorage,
    engine: &mut Engine,
    baseline: &mut HashMap<String, TableStats>,
    config: &CqmsConfig,
) -> Result<RefreshReport, CqmsError> {
    let mut report = RefreshReport::default();

    // 1. Which tables drifted?
    let mut drifted: Vec<String> = Vec::new();
    for name in engine.catalog.table_names() {
        let lower = name.to_ascii_lowercase();
        let current = engine.table_stats(&name)?;
        match baseline.get(&lower) {
            Some(prev) => {
                let d = prev.drift(&current);
                if d > config.refresh_drift_threshold {
                    drifted.push(lower.clone());
                }
            }
            None => {
                // First sighting: baseline it, no refresh needed.
            }
        }
        baseline.insert(lower, current);
    }
    report.drifted_tables = drifted.clone();

    // 2. Candidate queries: live, successful, touching a drifted table.
    let mut candidates: Vec<(u32, QueryId)> = Vec::new();
    for r in storage.iter() {
        if !r.is_live() || r.statement.is_none() {
            continue;
        }
        let touches_any = !r.features.tables.is_empty();
        if touches_any {
            report.naive_rerun_count += 1;
        }
        if r.features.tables.iter().any(|t| drifted.contains(t)) {
            candidates.push((storage.popularity(r.template_fp), r.id));
        }
    }
    // Popularity-first ("update the statistics more frequently for popular
    // or important queries").
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

    // 3. Re-execute under budget.
    for (i, (_, id)) in candidates.iter().enumerate() {
        if i >= config.refresh_budget {
            report.skipped_over_budget = candidates.len() - i;
            break;
        }
        let stmt = storage.get(*id)?.statement.clone().unwrap();
        if let Ok(res) = engine.execute_statement(&stmt) {
            {
                let r = storage.get_mut(*id)?;
                r.runtime.elapsed_us = res.metrics.elapsed.as_micros() as u64;
                r.runtime.cardinality = res.metrics.cardinality;
                r.runtime.rows_scanned = res.metrics.rows_scanned;
                r.runtime.plan = res.metrics.plan.clone();
                r.runtime.logical_time = res.metrics.logical_time;
            }
            // The drifted data also drifted the stored output: refresh
            // the summary through the sealed setter (→ reindex → the
            // registry schedules a background rebuild), never in place —
            // the signature's output row/cell hashes must follow it.
            let summary = match config.profiling_depth {
                ProfilingDepth::Full if !res.columns.is_empty() => {
                    crate::profiler::summarize_output(config, &res)
                }
                _ => OutputSummary::None,
            };
            if storage.get(*id)?.summary != summary {
                storage.refresh_summary(*id, summary)?;
            }
        }
        report.refreshed.push(*id);
    }
    Ok(report)
}

/// Recompute quality scores (§4.4: "quality can be defined in terms of query
/// efficiency, query simplicity, source tables' quality, etc.").
///
/// Components (weights in parentheses):
/// * success (0.35) — failed queries are poor recommendations;
/// * efficiency (0.2) — inverse latency percentile among live queries;
/// * simplicity (0.2) — smaller parse trees score higher;
/// * documentation (0.15) — annotated queries are worth more;
/// * freshness (0.1) — unflagged validity.
pub fn recompute_quality(storage: &mut QueryStorage) {
    let basis = latency_basis(storage);
    recompute_quality_with(storage, &basis);
}

/// The efficiency percentile's basis: sorted elapsed times of every
/// live, successful query in `storage`. A sharded deployment
/// concatenates (and re-sorts) the shards' bases and passes the merged
/// vector to [`recompute_quality_with`], so maintained quality is
/// placement-independent — each record lands on the same global
/// percentile a single instance would compute.
pub fn latency_basis(storage: &QueryStorage) -> Vec<u64> {
    let mut latencies: Vec<u64> = storage
        .iter()
        .filter(|r| r.is_live() && r.runtime.success)
        .map(|r| r.runtime.elapsed_us)
        .collect();
    latencies.sort_unstable();
    latencies
}

/// [`recompute_quality`] with an externally supplied (sorted) latency
/// basis — the corpus-wide statistic the efficiency term ranks against.
pub fn recompute_quality_with(storage: &mut QueryStorage, latencies: &[u64]) {
    let pct = |v: u64| -> f64 {
        if latencies.is_empty() {
            return 0.5;
        }
        let pos = latencies.partition_point(|&x| x <= v);
        pos as f64 / latencies.len() as f64
    };

    let ids: Vec<QueryId> = storage.iter().map(|r| r.id).collect();
    for id in ids {
        let r = storage.get_mut(id).unwrap();
        let success = if r.runtime.success { 1.0 } else { 0.0 };
        let efficiency = 1.0 - pct(r.runtime.elapsed_us);
        let size = r
            .statement
            .as_ref()
            .and_then(|s| s.as_select().map(sqlparse::diff::select_size))
            .unwrap_or(20);
        let simplicity = 1.0 / (1.0 + size as f64 / 10.0);
        let documented = if r.annotations.is_empty() { 0.0 } else { 1.0 };
        let fresh = match r.validity {
            Validity::Valid | Validity::Repaired { .. } => 1.0,
            _ => 0.0,
        };
        r.quality =
            0.35 * success + 0.2 * efficiency + 0.2 * simplicity + 0.15 * documented + 0.1 * fresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract;
    use crate::storage::make_record;
    use workload::Domain;

    fn engine() -> Engine {
        let mut e = Engine::new();
        Domain::Lakes.setup(&mut e, 50, 1);
        e
    }

    fn log_query(storage: &mut QueryStorage, engine: &mut Engine, sql: &str) -> QueryId {
        let stmt = sqlparse::parse(sql).unwrap();
        let res = engine.execute_statement(&stmt).unwrap();
        let feats = extract(&stmt, Some(&engine.catalog));
        let id = QueryId(storage.len() as u64);
        storage.insert(make_record(
            id,
            UserId(1),
            100,
            sql,
            Some(stmt),
            feats,
            RuntimeFeatures {
                elapsed_us: res.metrics.elapsed.as_micros() as u64,
                cardinality: res.metrics.cardinality,
                rows_scanned: res.metrics.rows_scanned,
                plan: res.metrics.plan,
                logical_time: res.metrics.logical_time,
                success: true,
                error: None,
            },
            OutputSummary::None,
            SessionId(id.0),
            Visibility::Public,
        ));
        id
    }

    #[test]
    fn rename_column_is_repaired() {
        let mut en = engine();
        let mut st = QueryStorage::new();
        let id = log_query(
            &mut st,
            &mut en,
            "SELECT temp FROM WaterTemp WHERE temp < 18",
        );
        en.execute("ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature")
            .unwrap();
        let report = scan_schema_changes(&mut st, &en).unwrap();
        assert_eq!(report.affected, 1);
        assert_eq!(report.repaired, vec![id]);
        let r = st.get(id).unwrap();
        assert!(matches!(r.validity, Validity::Repaired { .. }));
        assert!(r.raw_sql.contains("temperature"), "{}", r.raw_sql);
        // Repaired query actually runs.
        assert!(en.execute(&r.raw_sql).is_ok());
        // The feature relations were re-indexed.
        let hits = st
            .meta_engine()
            .query("SELECT qid FROM Attributes WHERE attrName = 'temperature'")
            .unwrap();
        assert_eq!(hits.rows.len(), 1);
    }

    #[test]
    fn rename_table_is_repaired() {
        let mut en = engine();
        let mut st = QueryStorage::new();
        let id = log_query(&mut st, &mut en, "SELECT temp FROM WaterTemp");
        en.execute("ALTER TABLE WaterTemp RENAME TO LakeTemp")
            .unwrap();
        let report = scan_schema_changes(&mut st, &en).unwrap();
        assert_eq!(report.repaired, vec![id]);
        let r = st.get(id).unwrap();
        assert!(r.raw_sql.contains("LakeTemp"), "{}", r.raw_sql);
        assert!(en.execute(&r.raw_sql).is_ok());
        // Popularity followed the query to its new template.
        assert_eq!(st.popularity(r.template_fp), 1);
    }

    #[test]
    fn dropped_column_flags_query() {
        let mut en = engine();
        let mut st = QueryStorage::new();
        let id = log_query(&mut st, &mut en, "SELECT month FROM WaterTemp");
        en.execute("ALTER TABLE WaterTemp DROP COLUMN month")
            .unwrap();
        let report = scan_schema_changes(&mut st, &en).unwrap();
        assert_eq!(report.flagged, vec![id]);
        assert!(matches!(
            st.get(id).unwrap().validity,
            Validity::Flagged { .. }
        ));
    }

    #[test]
    fn dropped_table_obsoletes_query() {
        let mut en = engine();
        let mut st = QueryStorage::new();
        let id = log_query(&mut st, &mut en, "SELECT * FROM Lakes");
        en.execute("DROP TABLE Lakes").unwrap();
        let report = scan_schema_changes(&mut st, &en).unwrap();
        assert_eq!(report.obsolete, vec![id]);
        assert!(!st.get(id).unwrap().is_live());
    }

    #[test]
    fn unaffected_queries_untouched() {
        let mut en = engine();
        let mut st = QueryStorage::new();
        let id = log_query(&mut st, &mut en, "SELECT * FROM Lakes");
        // Change to an unrelated table.
        en.execute("ALTER TABLE WaterTemp RENAME COLUMN month TO mon")
            .unwrap();
        let report = scan_schema_changes(&mut st, &en).unwrap();
        assert_eq!(report.affected, 0);
        assert_eq!(st.get(id).unwrap().validity, Validity::Valid);
        // ADD COLUMN is benign for existing queries.
        en.execute("ALTER TABLE Lakes ADD COLUMN volume FLOAT")
            .unwrap();
        let report = scan_schema_changes(&mut st, &en).unwrap();
        assert_eq!(report.affected, 1);
        assert!(report.repaired.is_empty() && report.flagged.is_empty());
        assert_eq!(st.get(id).unwrap().validity, Validity::Valid);
    }

    #[test]
    fn drift_triggered_refresh_only_affected_tables() {
        let mut en = engine();
        let mut st = QueryStorage::new();
        let q_temp = log_query(&mut st, &mut en, "SELECT * FROM WaterTemp WHERE temp < 18");
        let _q_lakes = log_query(&mut st, &mut en, "SELECT * FROM Lakes");
        let cfg = CqmsConfig::default();
        let mut baseline = HashMap::new();
        // Epoch 0: establish baselines, nothing drifts.
        let r0 = refresh_statistics(&mut st, &mut en, &mut baseline, &cfg).unwrap();
        assert!(r0.drifted_tables.is_empty());
        assert!(r0.refreshed.is_empty());
        // Massive shift in WaterTemp only.
        en.execute("UPDATE WaterTemp SET temp = temp + 1000")
            .unwrap();
        let r1 = refresh_statistics(&mut st, &mut en, &mut baseline, &cfg).unwrap();
        assert_eq!(r1.drifted_tables, vec!["watertemp"]);
        assert_eq!(r1.refreshed, vec![q_temp]);
        assert!(r1.naive_rerun_count >= 2, "naive would rerun everything");
    }

    #[test]
    fn refresh_respects_budget() {
        let mut en = engine();
        let mut st = QueryStorage::new();
        for i in 0..6 {
            log_query(
                &mut st,
                &mut en,
                &format!("SELECT * FROM WaterTemp WHERE temp < {}", 10 + i),
            );
        }
        let cfg = CqmsConfig {
            refresh_budget: 3,
            ..CqmsConfig::default()
        };
        let mut baseline = HashMap::new();
        refresh_statistics(&mut st, &mut en, &mut baseline, &cfg).unwrap();
        en.execute("UPDATE WaterTemp SET temp = temp * 100")
            .unwrap();
        let r = refresh_statistics(&mut st, &mut en, &mut baseline, &cfg).unwrap();
        assert_eq!(r.refreshed.len(), 3);
        assert_eq!(r.skipped_over_budget, 3);
    }

    #[test]
    fn quality_scoring_orders_sensibly() {
        let mut en = engine();
        let mut st = QueryStorage::new();
        let good = log_query(
            &mut st,
            &mut en,
            "SELECT temp FROM WaterTemp WHERE temp < 18",
        );
        st.annotate(
            good,
            Annotation {
                author: UserId(1),
                at: 1,
                text: "docs".into(),
                fragment: None,
            },
        )
        .unwrap();
        // A failed query.
        let bad_stmt = sqlparse::parse("SELECT * FROM NoTable").unwrap();
        let bad = QueryId(st.len() as u64);
        st.insert(make_record(
            bad,
            UserId(1),
            100,
            "SELECT * FROM NoTable",
            Some(bad_stmt),
            Default::default(),
            RuntimeFeatures {
                success: false,
                ..Default::default()
            },
            OutputSummary::None,
            SessionId(99),
            Visibility::Public,
        ));
        recompute_quality(&mut st);
        let qg = st.get(good).unwrap().quality;
        let qb = st.get(bad).unwrap().quality;
        assert!(qg > qb, "{qg} vs {qb}");
        assert!((0.0..=1.0).contains(&qg));
    }

    #[test]
    fn merged_latency_basis_reproduces_unsharded_quality() {
        // Two shards holding a striped partition of one corpus: quality
        // recomputed with the merged basis must equal the single-store
        // answer record for record, while each shard's *local* basis
        // ranks the same latencies differently.
        let timed = |id: u64, sql: &str, us: u64| {
            let stmt = sqlparse::parse(sql).unwrap();
            let feats = extract(&stmt, None);
            make_record(
                QueryId(id),
                UserId(1),
                100 + id,
                sql,
                Some(stmt),
                feats,
                RuntimeFeatures {
                    success: true,
                    elapsed_us: us,
                    ..Default::default()
                },
                OutputSummary::None,
                SessionId(id),
                Visibility::Public,
            )
        };
        let specs = [
            ("SELECT * FROM WaterTemp WHERE temp < 18", 100),
            ("SELECT * FROM Lakes", 900),
            ("SELECT * FROM WaterSalinity", 250),
            ("SELECT * FROM CityLocations", 700),
            ("SELECT temp FROM WaterTemp", 400),
            ("SELECT lake FROM Lakes WHERE area > 10", 50),
        ];
        let mut whole = QueryStorage::new();
        let mut shards = [QueryStorage::new(), QueryStorage::new()];
        for (i, (sql, us)) in specs.iter().enumerate() {
            whole.insert(timed(i as u64, sql, *us));
            shards[i % 2].insert(timed((i / 2) as u64, sql, *us));
        }
        recompute_quality(&mut whole);
        let basis: Vec<u64> = {
            let mut b: Vec<u64> = shards.iter().flat_map(latency_basis).collect();
            b.sort_unstable();
            b
        };
        assert_eq!(basis, latency_basis(&whole));
        for st in &mut shards {
            recompute_quality_with(st, &basis);
        }
        for (i, _) in specs.iter().enumerate() {
            let global = whole.get(QueryId(i as u64)).unwrap().quality;
            let local = shards[i % 2].get(QueryId((i / 2) as u64)).unwrap().quality;
            assert_eq!(global.to_bits(), local.to_bits(), "record {i} diverged");
        }
        // The local basis really would have skewed the percentile.
        let mut skewed = shards[0].clone();
        let own = latency_basis(&skewed);
        recompute_quality_with(&mut skewed, &own);
        assert!(
            (0..3).any(|i| {
                skewed.get(QueryId(i)).unwrap().quality.to_bits()
                    != shards[0].get(QueryId(i)).unwrap().quality.to_bits()
            }),
            "local basis unexpectedly matched the merged one"
        );
    }
}
