//! Crash-injection tests for the write-ahead log (`cqms_core::wal`).
//!
//! The headline test spawns *this very test binary* as a child process,
//! lets it ingest acknowledged batches through the full service stack,
//! and then kills it with `std::process::abort()` — no destructors, no
//! clean shutdown, exactly the crash the WAL exists for. The parent then
//! reopens the directory and proves that every acknowledged record
//! survived, by comparing the recovered storage against a RAM-only
//! reference fed the same workload.
//!
//! Alongside it: torn-tail truncation at the `Cqms::open` level,
//! snapshot + log-tail recovery, and a mid-batch crash simulated through
//! the in-memory sink (only the synced prefix replays).

use cqms_core::model::*;
use cqms_core::storage::QueryStorage;
use cqms_core::wal::{self, MemSink, WalWriter};
use cqms_core::{Cqms, CqmsConfig, CqmsService, IngestItem};
use relstore::Engine;
use std::path::PathBuf;
use std::process::Command;
use workload::Domain;

// ---------------------------------------------------------------------
// Shared fixtures: both child and parent must build the *same* world.
// ---------------------------------------------------------------------

fn engine() -> Engine {
    let mut engine = Engine::new();
    Domain::Lakes.setup(&mut engine, 120, 7);
    engine
}

/// The deterministic workload the child ingests before dying: three
/// acknowledged batches with explicit trace times (so sessions, edges and
/// the clock recover identically on replay).
fn crash_batches(user: UserId) -> Vec<Vec<IngestItem>> {
    let sqls: [&str; 12] = [
        "SELECT * FROM Lakes",
        "SELECT lake, temp FROM WaterTemp WHERE temp < 18",
        "SELECT lake, temp FROM WaterTemp WHERE temp < 15",
        "SELECT lake, temp FROM WaterTemp WHERE temp < 15 LIMIT 10",
        "SELECT salinity FROM WaterSalinity",
        "SELECT salinity FROM WaterSalinity WHERE salinity > 3",
        "SELECT * FROM CityLocations",
        "SELECT city, pop FROM CityLocations WHERE pop > 50000",
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x",
        "SELECT * FROM WaterTemp WHERE month = 7",
        "SELECT * FROM WaterTemp WHERE month = 8",
        "not even close to valid sql",
    ];
    sqls.chunks(4)
        .enumerate()
        .map(|(b, chunk)| {
            chunk
                .iter()
                .enumerate()
                .map(|(i, sql)| IngestItem::at(user, *sql, 1_000 + (b * 4 + i) as u64 * 60))
                .collect()
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cqms-{tag}-{}", std::process::id()))
}

/// Field-by-field equivalence of a recovered storage against a reference.
fn assert_storage_equiv(recovered: &QueryStorage, reference: &QueryStorage) {
    assert_eq!(recovered.len(), reference.len(), "record count");
    assert_eq!(recovered.live_count(), reference.live_count(), "live count");
    assert_eq!(
        recovered.template_histogram(),
        reference.template_histogram(),
        "popularity histogram"
    );
    assert_eq!(recovered.max_popularity(), reference.max_popularity());
    for want in reference.iter() {
        let got = recovered.get(want.id).expect("recovered record");
        assert_eq!(got.raw_sql, want.raw_sql, "{}", want.id);
        assert_eq!(got.user, want.user, "{}", want.id);
        assert_eq!(got.ts, want.ts, "{}", want.id);
        assert_eq!(got.session, want.session, "{}", want.id);
        assert_eq!(got.visibility, want.visibility, "{}", want.id);
        assert_eq!(got.validity, want.validity, "{}", want.id);
        assert_eq!(got.template_fp, want.template_fp, "{}", want.id);
        assert_eq!(got.annotations.len(), want.annotations.len(), "{}", want.id);
        for (a, b) in got.annotations.iter().zip(&want.annotations) {
            assert_eq!(a.text, b.text);
            assert_eq!(a.author, b.author);
            assert_eq!(a.at, b.at);
        }
    }
    assert_eq!(recovered.edges().len(), reference.edges().len(), "edges");
    for (a, b) in recovered.edges().iter().zip(reference.edges()) {
        assert_eq!(a.from, b.from);
        assert_eq!(a.to, b.to);
        assert_eq!(a.kind, b.kind);
    }
}

// ---------------------------------------------------------------------
// The child half of the crash test. A no-op in normal runs; when the
// parent re-invokes this binary with the env vars set, it ingests the
// workload through the full service stack and aborts without unwinding.
// ---------------------------------------------------------------------

#[test]
fn crash_child() {
    let Ok(dir) = std::env::var("CQMS_CRASH_DIR") else {
        return;
    };
    if std::env::var("CQMS_CRASH_CHILD").is_err() {
        return;
    }
    let cqms = Cqms::open(engine(), CqmsConfig::default(), &dir).expect("child open");
    let svc = CqmsService::new(cqms);
    let user = svc.register_user("alice");
    for batch in crash_batches(user) {
        let acks = svc.ingest_batch(&batch);
        // The profiler logs even unparseable text (the paper's "log
        // everything" stance), so every slot must be acknowledged — and
        // every acknowledged slot must survive the abort below.
        for (ack, item) in acks.iter().zip(&batch) {
            assert!(
                ack.is_ok(),
                "unacknowledged ingest for {:?}: {ack:?}",
                item.sql
            );
        }
    }
    // Printed only after every batch was durably acknowledged; the parent
    // requires this marker before it trusts the crash.
    println!("CHILD-ACKED");
    std::process::abort();
}

/// **Acceptance test**: a process kill (abort, not clean shutdown) after
/// an acknowledged `ingest_batch` loses zero acknowledged records on
/// reopen.
#[test]
fn acknowledged_batches_survive_process_abort() {
    let dir = temp_dir("crash");
    let _ = std::fs::remove_dir_all(&dir);
    let exe = std::env::current_exe().expect("current test binary");
    let out = Command::new(&exe)
        .args(["--exact", "crash_child", "--nocapture", "--test-threads=1"])
        .env("CQMS_CRASH_DIR", &dir)
        .env("CQMS_CRASH_CHILD", "1")
        .output()
        .expect("spawn crash child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("CHILD-ACKED"),
        "child never reached the acknowledged state:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !out.status.success(),
        "child must die by abort, not exit cleanly"
    );

    // Reopen the aborted directory: replay resurrects every acknowledged
    // record (the final unflushed buffer died with the process, but every
    // Ok the child saw had already been flushed).
    let recovered = Cqms::open(engine(), CqmsConfig::default(), &dir).expect("reopen after abort");
    let report = recovered.recovery().expect("recovery report").clone();
    assert_eq!(report.frames_failed, 0, "healthy log replays cleanly");
    assert!(report.frames_replayed > 0, "the log was not empty");

    // Reference: the same workload into a RAM-only CQMS.
    let mut reference = Cqms::new(engine(), CqmsConfig::default());
    let user = reference.register_user("alice");
    for batch in crash_batches(user) {
        for item in &batch {
            let _ = reference.run_query_at(item.user, &item.sql, item.ts.unwrap());
        }
    }
    assert_storage_equiv(&recovered.storage, &reference.storage);
    assert_eq!(recovered.now(), reference.now(), "clock recovered");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Torn tails and snapshots at the Cqms::open level.
// ---------------------------------------------------------------------

/// Garbage appended to the newest segment (a torn final write) is
/// detected by checksum, truncated — physically — and never poisons the
/// records before it.
#[test]
fn torn_wal_tail_is_truncated_on_reopen() {
    let dir = temp_dir("torn");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let cqms = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
        let svc = CqmsService::new(cqms);
        let user = svc.register_user("alice");
        svc.run_query(user, "SELECT * FROM Lakes").unwrap();
        svc.run_query(user, "SELECT lake, temp FROM WaterTemp WHERE temp < 10")
            .unwrap();
    }
    // Tear the tail: an implausible length prefix mid-frame.
    let (_, seg) = wal::list_segments(&dir)
        .unwrap()
        .pop()
        .expect("one live segment");
    let mut bytes = std::fs::read(&seg).unwrap();
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0xAB; 13]);
    std::fs::write(&seg, &bytes).unwrap();

    let recovered = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    let report = recovered.recovery().unwrap();
    assert_eq!(report.torn_bytes_truncated, 13);
    assert_eq!(report.frames_failed, 0);
    assert_eq!(
        recovered.storage.len(),
        2,
        "records before the tear survive"
    );
    assert_eq!(
        std::fs::metadata(&seg).unwrap().len(),
        clean_len as u64,
        "truncation is physical, not just logical"
    );
    drop(recovered);

    // A third open sees a clean log — and new writes go to the repaired
    // tail without colliding with old LSNs.
    let again = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    assert_eq!(again.recovery().unwrap().torn_bytes_truncated, 0);
    assert_eq!(again.storage.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery composes the newest snapshot with the log tail behind it:
/// records before the horizon come from the snapshot, records after it
/// from replay, and a second cycle keeps working.
#[test]
fn snapshot_plus_log_tail_recovers_everything() {
    let dir = temp_dir("snap");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut cqms = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
        let user = cqms.register_user("alice");
        for i in 0..5u64 {
            cqms.run_query_at(
                user,
                &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
                1_000 + i * 60,
            )
            .unwrap();
        }
        cqms.wal_flush().unwrap();
        assert!(cqms.force_snapshot().unwrap(), "snapshot written");
        // Post-snapshot tail.
        for i in 0..3u64 {
            cqms.run_query_at(
                user,
                &format!("SELECT salinity FROM WaterSalinity WHERE salinity > {i}"),
                2_000 + i * 60,
            )
            .unwrap();
        }
        cqms.wal_flush().unwrap();
    }
    let recovered = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    let report = recovered.recovery().unwrap();
    assert!(
        report.snapshot_lsn > 0,
        "recovery started from the snapshot"
    );
    assert_eq!(report.snapshot_records, 5);
    assert!(report.frames_replayed >= 3, "the tail replayed");
    assert_eq!(report.frames_failed, 0);
    assert_eq!(recovered.storage.len(), 8);
    // Snapshotting pruned covered segments: the directory holds exactly
    // one snapshot plus the post-snapshot segment(s).
    assert_eq!(wal::list_snapshots(&dir).unwrap().len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Mid-batch crash via the in-memory sink: storage-level equivalence.
// ---------------------------------------------------------------------

/// A crash between flush points loses exactly the unflushed suffix: the
/// recovered storage equals a reference fed only the synced operations —
/// across inserts, edges, annotations, validity flips, visibility
/// changes, deletes and a reindex.
#[test]
fn mid_batch_crash_replays_only_synced_operations() {
    use cqms_core::features::extract;
    use cqms_core::storage::make_record;

    let mk = |id: u64, sql: &str, ts: u64| {
        let stmt = sqlparse::parse(sql).ok();
        let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
        make_record(
            QueryId(id),
            UserId(0),
            ts,
            sql,
            stmt,
            feats,
            RuntimeFeatures {
                elapsed_us: 100 + ts,
                cardinality: ts % 13,
                success: true,
                ..Default::default()
            },
            OutputSummary::None,
            SessionId(ts / 600),
            Visibility::Public,
        )
    };
    let sqls = [
        "SELECT * FROM Lakes",
        "SELECT lake FROM WaterTemp WHERE temp < 4",
        "SELECT salinity FROM WaterSalinity",
        "SELECT * FROM CityLocations WHERE pop > 10",
        "SELECT * FROM WaterTemp WHERE month = 2",
    ];

    // Phase 1 (synced): inserts, an edge, an annotation, a validity flip,
    // a visibility change — then flush.
    let (sink, log) = MemSink::new();
    let mut st = QueryStorage::new();
    st.attach_wal(WalWriter::new(Box::new(sink), 1));
    for (i, sql) in sqls.iter().enumerate() {
        st.insert(mk(i as u64, sql, 1_000 + i as u64 * 60));
    }
    st.add_edge(SessionEdge {
        from: QueryId(0),
        to: QueryId(1),
        kind: EdgeKind::Evolution,
        edits: Vec::new(),
    });
    st.annotate(
        QueryId(2),
        Annotation {
            author: UserId(0),
            at: 1_300,
            text: "salinity baseline".into(),
            fragment: Some("WaterSalinity".into()),
        },
    )
    .unwrap();
    st.set_validity(
        QueryId(3),
        Validity::Flagged {
            reason: "schema drift".into(),
            at: 1_400,
        },
    )
    .unwrap();
    st.set_visibility(QueryId(4), Visibility::Private).unwrap();
    st.wal_flush().unwrap();

    // Reference = the *live* state at the flush point, captured through
    // the (independently tested) snapshot path — so the comparison below
    // checks log replay against live state, not replay against itself.
    let reference = {
        let mut buf = Vec::new();
        st.snapshot(&mut buf).unwrap();
        QueryStorage::load(&buf[..]).unwrap()
    };

    // Phase 2 (never synced): more mutations that will die with the
    // "process".
    st.insert(mk(5, "SELECT * FROM WaterTemp WHERE month = 3", 2_000));
    st.delete(QueryId(0)).unwrap();
    st.reindex(QueryId(1)).unwrap();
    st.annotate(
        QueryId(2),
        Annotation {
            author: UserId(0),
            at: 2_100,
            text: "lost note".into(),
            fragment: None,
        },
    )
    .unwrap();
    // No flush: simulate the crash by recovering from durable state.
    let (recovered, report) = log.lock().recover().unwrap();
    assert_eq!(report.frames_failed, 0);
    assert_storage_equiv(&recovered, &reference);
    assert_eq!(recovered.len(), 5, "the unsynced insert is gone");
    assert!(
        recovered.get(QueryId(0)).unwrap().is_live(),
        "unsynced delete is gone"
    );
    assert_eq!(recovered.get(QueryId(2)).unwrap().annotations.len(), 1);
}

// ---------------------------------------------------------------------
// Orphaned (written-but-unmarked) snapshots: the phase-3-giveup path.
// ---------------------------------------------------------------------

/// A previous snapshot cycle may have written + fsynced the snapshot file
/// and then failed to mark it (the write lock never came free within the
/// bounded grace period). Recovery must prefer that orphan anyway: the
/// snapshot provides every record up to its horizon and replay skips
/// frames with lsn ≤ horizon, so nothing is double-applied.
#[test]
fn recovery_prefers_orphaned_unmarked_snapshot() {
    let dir = temp_dir("orphan-recover");
    let _ = std::fs::remove_dir_all(&dir);
    let (reference_len, reference_now, horizon) = {
        let mut cqms = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
        let user = cqms.register_user("alice");
        for i in 0..6u64 {
            cqms.run_query_at(
                user,
                &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
                1_000 + i * 60,
            )
            .unwrap();
        }
        cqms.wal_flush().unwrap();
        // Simulate the giveup: write + fsync the snapshot file exactly the
        // way phase 2 does, but never mark it — no rotation, no pruning.
        let snap_dir = cqms.storage.wal_snapshot_dir().expect("durable dir");
        let horizon = cqms.storage.wal_last_lsn().unwrap();
        let mut body = Vec::new();
        cqms.storage.snapshot(&mut body).unwrap();
        wal::write_snapshot_file(&snap_dir, horizon, &body, true).unwrap();
        (cqms.storage.len(), cqms.now(), horizon)
    };

    let recovered = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    let report = recovered.recovery().unwrap();
    assert_eq!(
        report.snapshot_lsn, horizon,
        "recovery starts from the orphaned snapshot"
    );
    assert_eq!(report.frames_failed, 0);
    assert_eq!(recovered.storage.len(), reference_len);
    assert_eq!(recovered.now(), reference_now, "clock recovered");
    // The pre-horizon frames are still in the (unrotated) log, so they
    // were offered to replay — and skipped, not double-applied.
    assert_eq!(recovered.storage.live_count(), reference_len);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The *reuse* half of the fix: when the next snapshot cycle comes due at
/// the same horizon, the already-fsynced orphan is adopted as-is (same
/// inode — the file is not serialised and written again) and only the
/// cheap phase-3 mark runs.
#[test]
#[cfg(unix)]
fn orphaned_snapshot_is_reused_not_rewritten() {
    use std::os::unix::fs::MetadataExt;
    use std::time::Duration;

    let dir = temp_dir("orphan-reuse");
    let _ = std::fs::remove_dir_all(&dir);
    // Snapshots never come due on their own until we lower the threshold.
    let config = CqmsConfig {
        snapshot_every_ops: u64::MAX,
        ..CqmsConfig::default()
    };
    let cqms = Cqms::open(engine(), config, &dir).unwrap();
    let svc = CqmsService::new(cqms);
    let user = svc.register_user("alice");
    for i in 0..6u64 {
        svc.run_query_at(
            user,
            &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
            1_000 + i * 60,
        )
        .unwrap();
    }
    // Settle the miner once so the next epoch re-logs nothing and the
    // horizon stays put.
    let report = svc.run_miner_epoch();
    assert!(report.wal_flush_error.is_none());

    // Fabricate the orphan at the current horizon, exactly as a crashed
    // phase 3 would leave it.
    let (snap_dir, horizon) = svc.read(|c| {
        (
            c.storage.wal_snapshot_dir().expect("durable dir"),
            c.storage.wal_last_lsn().unwrap(),
        )
    });
    let body = svc.read(|c| {
        let mut b = Vec::new();
        c.storage.snapshot(&mut b).unwrap();
        b
    });
    wal::write_snapshot_file(&snap_dir, horizon, &body, true).unwrap();
    let snaps = wal::list_snapshots(&snap_dir).unwrap();
    let orphan = snaps
        .iter()
        .find(|(h, _)| *h == horizon)
        .map(|(_, p)| p.clone())
        .expect("orphan written");
    let orphan_ino = std::fs::metadata(&orphan).unwrap().ino();

    // Make a snapshot due and let the background path run one cycle.
    svc.write(|c| c.config.snapshot_every_ops = 1);
    assert!(svc.read(Cqms::wal_snapshot_due), "snapshot is due");
    assert!(svc.start_miner(Duration::from_millis(1)));
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while svc.read(Cqms::wal_snapshot_due) {
        assert!(
            std::time::Instant::now() < deadline,
            "background snapshot never marked"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    svc.stop_miner();

    // The orphan was adopted: same path, same inode — never rewritten.
    let meta = std::fs::metadata(&orphan).expect("snapshot survived the mark");
    assert_eq!(
        meta.ino(),
        orphan_ino,
        "snapshot file was rewritten instead of reused"
    );
    // And it is now the marked snapshot of record: a reopen starts there.
    drop(svc);
    let recovered = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    assert_eq!(recovered.recovery().unwrap().snapshot_lsn, horizon);
    assert_eq!(recovered.storage.len(), 6);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Sharded durability: each shard recovers its own WAL directory.
// ---------------------------------------------------------------------

/// A sharded deployment persists one WAL directory per shard; reopening
/// recovers every shard and resumes the global clock past all of them.
#[test]
fn sharded_deployment_recovers_every_shard() {
    use cqms_core::ShardedCqms;

    let dir = temp_dir("sharded");
    let _ = std::fs::remove_dir_all(&dir);
    let config = CqmsConfig {
        shards: 3,
        ..CqmsConfig::default()
    };
    let mut expect: Vec<(QueryId, String)> = Vec::new();
    {
        let s = ShardedCqms::open(engine, config.clone(), &dir).unwrap();
        let users: Vec<UserId> = (0..6)
            .map(|i| s.register_user(&format!("user{i}")))
            .collect();
        for (i, &u) in users.iter().enumerate() {
            let sql = format!("SELECT lake, temp FROM WaterTemp WHERE temp < {}", 10 + i);
            let id = s.run_query(u, &sql).unwrap().id;
            expect.push((id, sql));
        }
        assert_eq!(s.now(), 6 * 30);
        s.shutdown();
    }
    for i in 0..3 {
        assert!(
            dir.join(format!("shard-{i}")).is_dir(),
            "shard {i} has its own WAL directory"
        );
    }
    let s = ShardedCqms::open(engine, config, &dir).unwrap();
    assert_eq!(s.live_count(), 6, "every shard recovered its records");
    assert_eq!(s.now(), 6 * 30, "global clock resumed past all shards");
    for (id, sql) in expect {
        let (shard, local) = s.locate(id);
        let got = s.shards()[shard].read(|c| c.storage.get(local).unwrap().raw_sql.clone());
        assert_eq!(got, sql, "{id} recovered on shard {shard}");
    }
    // And the recovered deployment keeps working.
    let u = s.register_user("late");
    let id = s.run_query(u, "SELECT * FROM Lakes").unwrap().id;
    assert_eq!(s.live_count(), 7);
    s.delete_query(u, id).unwrap();
    assert_eq!(s.live_count(), 6);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Byte offset, length and LSN of every frame in a segment, walked off
/// the `[len][crc][body]` framing — lets a test wound one frame precisely.
fn frame_offsets(bytes: &[u8]) -> Vec<(usize, usize, u64)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if bytes.len() - pos - 8 < len {
            break;
        }
        let lsn = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
        out.push((pos, 8 + len, lsn));
        pos += 8 + len;
    }
    out
}

fn sorted_sqls(storage: &QueryStorage) -> Vec<String> {
    let mut out: Vec<String> = (0..storage.len())
        .map(|q| storage.get(QueryId(q as u64)).unwrap().raw_sql.clone())
        .collect();
    out.sort();
    out
}

/// Mid-log corruption *under* a snapshot horizon is fully salvageable:
/// the wrecked frames were only ever offered to replay to be skipped, so
/// recovery loses nothing — it quarantines the damaged segment for
/// forensics and replays the post-horizon tail as if nothing happened.
#[test]
fn midlog_corruption_under_snapshot_horizon_salvages_without_loss() {
    let dir = temp_dir("salvage-covered");
    let _ = std::fs::remove_dir_all(&dir);
    let reference = {
        let mut cqms = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
        let user = cqms.register_user("alice");
        for i in 0..6u64 {
            cqms.run_query_at(
                user,
                &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
                1_000 + i * 60,
            )
            .unwrap();
        }
        cqms.wal_flush().unwrap();
        // Snapshot covering everything written so far...
        let snap_dir = cqms.storage.wal_snapshot_dir().expect("durable dir");
        let horizon = cqms.storage.wal_last_lsn().unwrap();
        let mut body = Vec::new();
        cqms.storage.snapshot(&mut body).unwrap();
        wal::write_snapshot_file(&snap_dir, horizon, &body, true).unwrap();
        // ...then two more queries past the horizon.
        for i in 6..8u64 {
            cqms.run_query_at(
                user,
                &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
                1_000 + i * 60,
            )
            .unwrap();
        }
        cqms.wal_flush().unwrap();
        sorted_sqls(&cqms.storage)
    };

    // Wound the second frame — comfortably below the horizon.
    let (_, seg) = wal::list_segments(&dir).unwrap().remove(0);
    let mut bytes = std::fs::read(&seg).unwrap();
    let frames = frame_offsets(&bytes);
    assert!(frames.len() >= 4, "several frames to choose from");
    let (off, len, _) = frames[1];
    bytes[off + len / 2] ^= 0xFF;
    std::fs::write(&seg, &bytes).unwrap();

    let recovered = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    let report = recovered.recovery().unwrap();
    assert_eq!(report.frames_lost, 0, "covered corruption costs nothing");
    assert!(report.bytes_quarantined > 0, "the wound is on the books");
    assert!(report.frames_skipped > 0, "pre-horizon frames were skipped");
    assert_eq!(
        sorted_sqls(&recovered.storage),
        reference,
        "full state back"
    );
    assert!(
        dir.join("quarantine").join("MANIFEST.txt").is_file(),
        "quarantined segment is documented"
    );
    drop(recovered);

    // Convergence: the next open finds a clean directory.
    let again = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    let report = again.recovery().unwrap();
    assert_eq!(report.frames_lost, 0);
    assert_eq!(report.bytes_quarantined, 0);
    assert_eq!(report.torn_bytes_truncated, 0);
    assert_eq!(sorted_sqls(&again.storage), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-log corruption with *no* covering snapshot breaks LSN continuity:
/// later frames decode but cannot be safely applied. Recovery must report
/// the loss precisely (`frames_lost` / `bytes_quarantined`, not the
/// benign `torn_bytes_truncated`), preserve the evidence under
/// `quarantine/`, and leave a working store.
#[test]
fn midlog_corruption_without_snapshot_reports_lost_frames() {
    let dir = temp_dir("salvage-lost");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut cqms = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
        let user = cqms.register_user("alice");
        for i in 0..5u64 {
            cqms.run_query_at(
                user,
                &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
                1_000 + i * 60,
            )
            .unwrap();
        }
        cqms.wal_flush().unwrap();
    }

    let (_, seg) = wal::list_segments(&dir).unwrap().remove(0);
    let mut bytes = std::fs::read(&seg).unwrap();
    let frames = frame_offsets(&bytes);
    assert!(frames.len() >= 3);
    let (off, len, _) = frames[1];
    bytes[off + len / 2] ^= 0xFF;
    std::fs::write(&seg, &bytes).unwrap();

    let recovered = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    let report = recovered.recovery().unwrap().clone();
    assert!(report.frames_lost > 0, "unreachable frames are counted");
    assert!(report.bytes_quarantined > 0);
    assert_eq!(
        report.torn_bytes_truncated, 0,
        "mid-log damage is not a benign torn tail"
    );
    assert!(report.lossy());
    assert!(
        format!("{report}").contains("lost"),
        "the report says so out loud: {report}"
    );
    let manifest = std::fs::read_to_string(dir.join("quarantine").join("MANIFEST.txt")).unwrap();
    assert!(
        manifest.contains("mid-log"),
        "manifest names the cause: {manifest}"
    );
    drop(recovered);

    // The store re-anchored: a second open is clean and writable.
    let cqms = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    let report = cqms.recovery().unwrap();
    assert_eq!(
        report.frames_lost, 0,
        "loss is reported once, not re-reported"
    );
    assert_eq!(report.bytes_quarantined, 0);
    let svc = CqmsService::new(cqms);
    let user = svc.register_user("bob");
    svc.run_query(user, "SELECT * FROM Lakes").unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted snapshot fails its CRC, is quarantined, and recovery falls
/// back to full log replay — no state is lost because the segments are
/// still whole.
#[test]
fn corrupt_snapshot_is_quarantined_and_log_replay_covers() {
    let dir = temp_dir("salvage-snap");
    let _ = std::fs::remove_dir_all(&dir);
    let reference = {
        let mut cqms = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
        let user = cqms.register_user("alice");
        for i in 0..5u64 {
            cqms.run_query_at(
                user,
                &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
                1_000 + i * 60,
            )
            .unwrap();
        }
        cqms.wal_flush().unwrap();
        let snap_dir = cqms.storage.wal_snapshot_dir().expect("durable dir");
        let horizon = cqms.storage.wal_last_lsn().unwrap();
        let mut body = Vec::new();
        cqms.storage.snapshot(&mut body).unwrap();
        wal::write_snapshot_file(&snap_dir, horizon, &body, true).unwrap();
        sorted_sqls(&cqms.storage)
    };

    // Flip one byte in the middle of the snapshot: the CRC trailer turns
    // would-be silent corruption into a detected failure.
    let (_, snap) = wal::list_snapshots(&dir).unwrap().remove(0);
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&snap, &bytes).unwrap();

    let recovered = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    let report = recovered.recovery().unwrap();
    assert_eq!(
        report.snapshot_lsn, 0,
        "rejected snapshot is not replayed from"
    );
    assert!(
        report.bytes_quarantined > 0,
        "rejected snapshot is accounted"
    );
    assert_eq!(report.frames_lost, 0);
    assert_eq!(
        sorted_sqls(&recovered.storage),
        reference,
        "log replay covers"
    );
    assert!(
        dir.join("quarantine").join("MANIFEST.txt").is_file(),
        "snapshot preserved for forensics"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Legacy snapshots written before the CRC trailer existed carry no
/// trailer at all — they must keep loading as-is.
#[test]
fn legacy_trailerless_snapshot_still_loads() {
    let dir = temp_dir("salvage-legacy");
    let _ = std::fs::remove_dir_all(&dir);
    let (reference, horizon) = {
        let mut cqms = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
        let user = cqms.register_user("alice");
        for i in 0..4u64 {
            cqms.run_query_at(
                user,
                &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
                1_000 + i * 60,
            )
            .unwrap();
        }
        cqms.wal_flush().unwrap();
        let snap_dir = cqms.storage.wal_snapshot_dir().expect("durable dir");
        let horizon = cqms.storage.wal_last_lsn().unwrap();
        let mut body = Vec::new();
        cqms.storage.snapshot(&mut body).unwrap();
        wal::write_snapshot_file(&snap_dir, horizon, &body, true).unwrap();
        (sorted_sqls(&cqms.storage), horizon)
    };

    // Strip the 24-byte trailer: byte-identical to a pre-trailer file.
    let (_, snap) = wal::list_snapshots(&dir).unwrap().remove(0);
    let bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &bytes[..bytes.len() - 24]).unwrap();

    let recovered = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    let report = recovered.recovery().unwrap();
    assert_eq!(report.snapshot_lsn, horizon, "legacy snapshot is used");
    assert_eq!(report.bytes_quarantined, 0);
    assert_eq!(sorted_sqls(&recovered.storage), reference);
    let _ = std::fs::remove_dir_all(&dir);
}
