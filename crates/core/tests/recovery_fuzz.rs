//! Deterministic recovery fuzzer (PR 9 acceptance): proptest-driven
//! bit-flips, truncations and garbage overwrites against WAL segments and
//! snapshot files, proving that [`cqms_core::wal::open_dir`]:
//!
//! 1. **never panics** on corrupted input — every case returns through
//!    `Result`;
//! 2. **never double-applies** — a second open of the cleaned-up
//!    directory reproduces the exact same state with zero further loss;
//! 3. recovers a state equal to the oracle prefix `ops[..max_lsn]` —
//!    salvage may drop a suffix or skip snapshot-covered frames, but it
//!    never invents, reorders, or half-applies operations;
//! 4. accounts for every acknowledged-and-synced frame it failed to
//!    recover: if the recovered prefix is short, the report must show the
//!    loss (`frames_lost` / `bytes_quarantined` for mid-log corruption,
//!    `torn_bytes_truncated` for a damaged tail) — except for the one
//!    physically undetectable case, a truncation landing exactly on a
//!    frame boundary, which only a generated `Truncate` can produce.
//!
//! The fuzzer drives the wal layer directly (hand-encoded frames, explicit
//! segment splits, optional snapshot) so the oracle is exact: one frame is
//! one LSN is one logical op.

use cqms_core::features::extract;
use cqms_core::model::{
    OutputSummary, QueryId, QueryRecord, RuntimeFeatures, SessionId, UserId, Visibility,
};
use cqms_core::storage::{make_record, QueryStorage};
use cqms_core::wal::{apply_op, encode_frame, open_dir, write_snapshot_file, InsertFrame, WalOp};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh scratch directory per case (unique across threads and cases).
fn case_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "cqms-recovery-fuzz-{tag}-{}-{n}",
        std::process::id()
    ))
}

fn record(id: u64, sql: &str) -> QueryRecord {
    let stmt = sqlparse::parse(sql).ok();
    let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
    make_record(
        QueryId(id),
        UserId(1 + (id % 3) as u32),
        1_000 + id * 60,
        sql,
        stmt,
        feats,
        RuntimeFeatures {
            elapsed_us: 500,
            cardinality: 3,
            success: true,
            ..RuntimeFeatures::default()
        },
        OutputSummary::None,
        SessionId(id / 4),
        Visibility::Public,
    )
}

const SQLS: &[&str] = &[
    "SELECT * FROM WaterTemp",
    "SELECT * FROM Lakes WHERE area > 4",
    "SELECT * FROM WaterSalinity WHERE salinity < 30",
    "SELECT * FROM CityLocations",
];

/// One generated logical op; each becomes exactly one WAL frame.
#[derive(Debug, Clone)]
enum FuzzOp {
    Insert,
    Hide { pick: usize, vis: u8 },
    Delete { pick: usize },
}

fn op_strategy() -> impl Strategy<Value = FuzzOp> {
    prop_oneof![
        5 => Just(FuzzOp::Insert),
        2 => (0usize..64, 0u8..3).prop_map(|(pick, vis)| FuzzOp::Hide { pick, vis }),
        1 => (0usize..64).prop_map(|pick| FuzzOp::Delete { pick }),
    ]
}

/// One generated corruption. Offsets/lengths are fractions (0..=10_000 of
/// the target file's size) because file sizes are unknown at generation
/// time; `pick` selects the target file mod the directory listing.
#[derive(Debug, Clone)]
enum Corruption {
    BitFlip { pick: usize, frac: u64, bit: u8 },
    Truncate { pick: usize, frac: u64 },
    Garbage { pick: usize, frac: u64, len: usize },
}

fn corruption_strategy() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        3 => (0usize..16, 0u64..=10_000, 0u8..8)
            .prop_map(|(pick, frac, bit)| Corruption::BitFlip { pick, frac, bit }),
        2 => (0usize..16, 0u64..=10_000)
            .prop_map(|(pick, frac)| Corruption::Truncate { pick, frac }),
        2 => (0usize..16, 0u64..=10_000, 1usize..=8)
            .prop_map(|(pick, frac, len)| Corruption::Garbage { pick, frac, len }),
    ]
}

/// Turn the generated ops into concrete `WalOp` frames. `Hide`/`Delete`
/// with no prior insert degrade to `Insert` so every frame is applicable
/// and the oracle prefix is exact.
fn materialize(ops: &[FuzzOp]) -> Vec<WalOp> {
    let mut out = Vec::with_capacity(ops.len());
    let mut inserted = 0u64;
    for op in ops {
        let wal_op = match op {
            FuzzOp::Hide { pick, vis } if inserted > 0 => WalOp::SetVisibility {
                id: QueryId(*pick as u64 % inserted),
                visibility: match vis {
                    0 => Visibility::Public,
                    1 => Visibility::Private,
                    _ => Visibility::Group(cqms_core::model::GroupId(0)),
                },
            },
            FuzzOp::Delete { pick } if inserted > 0 => WalOp::Tombstone {
                id: QueryId(*pick as u64 % inserted),
            },
            _ => {
                let id = inserted;
                inserted += 1;
                WalOp::Insert(Box::new(InsertFrame::of(&record(
                    id,
                    SQLS[id as usize % SQLS.len()],
                ))))
            }
        };
        out.push(wal_op);
    }
    out
}

/// Canonical observable state: one sorted line per stored record.
fn canonical(storage: &QueryStorage) -> Vec<String> {
    let mut out: Vec<String> = (0..storage.len())
        .map(|q| {
            let r = storage.get(QueryId(q as u64)).expect("dense ids");
            format!(
                "u{} {:?} {:?} {}",
                r.user.0, r.visibility, r.validity, r.raw_sql
            )
        })
        .collect();
    out.sort();
    out
}

/// Oracle states: `prefix[i]` is the canonical state after applying the
/// first `i` frames (`prefix[0]` is empty).
fn oracle_prefixes(wal_ops: &[WalOp]) -> Vec<Vec<String>> {
    let mut storage = QueryStorage::new();
    let mut prefixes = vec![canonical(&storage)];
    for op in wal_ops {
        apply_op(&mut storage, op).expect("oracle replay");
        prefixes.push(canonical(&storage));
    }
    prefixes
}

/// Every corruptible file currently in `dir` (WAL segments + snapshots),
/// sorted for determinism. Quarantine contents are excluded.
fn corruptible_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-") || n.starts_with("snapshot-"))
        })
        .collect();
    files.sort();
    files
}

/// What a corruption actually did: `truncated` is the only wound that can
/// destroy synced data without leaving evidence (a cut at a frame
/// boundary, or a snapshot losing its CRC trailer and passing as a
/// shorter legacy file), and `snapshot` records whether it landed on a
/// snapshot rather than a WAL segment.
#[derive(Default, Clone, Copy)]
struct Wound {
    truncated: bool,
    snapshot: bool,
}

/// Apply one corruption and report what it wounded.
fn corrupt(files: &[PathBuf], c: &Corruption) -> Wound {
    let pick = match c {
        Corruption::BitFlip { pick, .. }
        | Corruption::Truncate { pick, .. }
        | Corruption::Garbage { pick, .. } => *pick,
    };
    let path = &files[pick % files.len()];
    let snapshot = path
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("snapshot-"));
    let len = std::fs::metadata(path).expect("stat").len();
    if len == 0 {
        return Wound::default();
    }
    match c {
        Corruption::BitFlip { frac, bit, .. } => {
            let mut bytes = std::fs::read(path).expect("read");
            let off = (frac * (len - 1) / 10_000) as usize;
            bytes[off] ^= 1 << bit;
            std::fs::write(path, bytes).expect("write back");
            Wound {
                truncated: false,
                snapshot,
            }
        }
        Corruption::Truncate { frac, .. } => {
            let new_len = frac * (len - 1) / 10_000;
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .expect("open");
            f.set_len(new_len).expect("truncate");
            Wound {
                truncated: true,
                snapshot,
            }
        }
        Corruption::Garbage {
            frac, len: glen, ..
        } => {
            let mut bytes = std::fs::read(path).expect("read");
            let off = (frac * (len - 1) / 10_000) as usize;
            let end = (off + glen).min(bytes.len());
            for b in &mut bytes[off..end] {
                *b = 0xAA;
            }
            std::fs::write(path, bytes).expect("write back");
            Wound {
                truncated: false,
                snapshot,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fuzzer proper. Builds a known-good durable directory (frames
    /// split across segments, optional covering snapshot), wounds it with
    /// generated corruptions, then checks the recovery contract.
    #[test]
    fn corrupted_open_recovers_exact_prefix_or_reports_loss(
        ops in proptest::collection::vec(op_strategy(), 1..20),
        corruptions in proptest::collection::vec(corruption_strategy(), 1..5),
        splits in proptest::collection::vec(0usize..64, 0..3),
        snapshot_frac in proptest::option::of(0u64..=10_000),
    ) {
        let dir = case_dir("open");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        let wal_ops = materialize(&ops);
        let n = wal_ops.len() as u64;
        let prefixes = oracle_prefixes(&wal_ops);

        // Lay the frames out across 1..=3 segments at generated split
        // points; each segment file is named after its first LSN.
        let mut cuts: Vec<usize> =
            splits.iter().map(|s| s % wal_ops.len()).filter(|&s| s > 0).collect();
        cuts.sort_unstable();
        cuts.dedup();
        cuts.push(wal_ops.len());
        let mut start = 0usize;
        for &end in &cuts {
            if end <= start {
                continue;
            }
            let mut buf = Vec::new();
            for (i, op) in wal_ops[start..end].iter().enumerate() {
                encode_frame(&mut buf, (start + i) as u64 + 1, op);
            }
            let first_lsn = start as u64 + 1;
            std::fs::write(dir.join(format!("wal-{first_lsn:020}.log")), &buf)
                .expect("write segment");
            start = end;
        }

        // Optional snapshot covering a prefix: recovery must skip the
        // covered frames and resume replay past the horizon.
        if let Some(frac) = snapshot_frac {
            let horizon = frac * n / 10_000;
            let mut storage = QueryStorage::new();
            for op in &wal_ops[..horizon as usize] {
                apply_op(&mut storage, op).expect("snapshot build");
            }
            let mut body = Vec::new();
            storage.snapshot(&mut body).expect("snapshot body");
            write_snapshot_file(&dir, horizon, &body, false).expect("snapshot file");
        }

        // Wound the directory.
        let files = corruptible_files(&dir);
        prop_assert!(!files.is_empty(), "directory always has a segment");
        let mut any_truncation = false;
        let mut snapshot_truncated = false;
        for c in &corruptions {
            let wound = corrupt(&files, c);
            any_truncation |= wound.truncated;
            snapshot_truncated |= wound.truncated && wound.snapshot;
        }

        // Contract 1: open never panics and never errors on corrupt data.
        let recovered = open_dir(&dir, false).expect("open_dir survives corruption");
        let report = recovered.report.clone();

        let state = canonical(&recovered.storage);

        // Contract 3: with every frame that replayed accounted for, the
        // state is *exactly* the oracle prefix at max_lsn — nothing
        // invented, nothing half-applied, nothing reordered. A truncated
        // snapshot (CRC trailer cut off, passing as a shorter legacy
        // file) or failed frames (reported!) relax this to the
        // stability checks below.
        prop_assert!(report.max_lsn <= n, "cannot recover frames never written");
        if !snapshot_truncated && report.frames_failed == 0 {
            prop_assert_eq!(
                &state,
                &prefixes[report.max_lsn as usize],
                "recovered state must equal the oracle prefix at lsn {}", report.max_lsn
            );
        }

        // Contract 4: a short prefix must be accounted for in the report
        // (`frames_lost`/`bytes_quarantined`, a torn tail, or failed
        // frames). The only silent case is a truncation landing exactly
        // on a frame boundary — physically indistinguishable from a
        // shorter clean log, and only a Truncate corruption produces it.
        if report.max_lsn < n
            && !report.lossy()
            && report.torn_bytes_truncated == 0
            && report.frames_failed == 0
        {
            prop_assert!(
                any_truncation,
                "silent prefix loss without a boundary truncation (max_lsn {} < {})",
                report.max_lsn, n
            );
        }
        // And conversely: a full clean recovery may not claim lost frames.
        if report.max_lsn == n {
            prop_assert_eq!(report.frames_lost, 0, "full recovery cannot lose frames");
        }
        drop(recovered);

        // Contract 2: reopening the healed directory is clean (no further
        // loss of any kind) and reproduces the identical state — salvage
        // is convergent and nothing is double-applied.
        let second = open_dir(&dir, false).expect("second open is clean");
        prop_assert_eq!(second.report.frames_lost, 0, "second open loses nothing");
        prop_assert_eq!(second.report.bytes_quarantined, 0, "nothing left to quarantine");
        prop_assert_eq!(second.report.torn_bytes_truncated, 0, "no torn tail remains");
        prop_assert_eq!(second.report.max_lsn, report.max_lsn, "the prefix is stable");
        prop_assert_eq!(
            canonical(&second.storage),
            state,
            "second open reproduces the same state"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Snapshot-targeted variant: corrupt *only* snapshot files of a
    /// directory whose log was then truncated away, so recovery must
    /// either read a snapshot or fall back across quarantined ones. The
    /// CRC trailer turns silent snapshot corruption into detected,
    /// quarantined corruption.
    #[test]
    fn corrupted_snapshot_falls_back_without_panicking(
        inserts in 1usize..10,
        corruption in corruption_strategy(),
    ) {
        let dir = case_dir("snap");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        let wal_ops = materialize(&vec![FuzzOp::Insert; inserts]);
        let prefixes = oracle_prefixes(&wal_ops);
        let mut storage = QueryStorage::new();
        for op in &wal_ops {
            apply_op(&mut storage, op).expect("build");
        }
        let mut body = Vec::new();
        storage.snapshot(&mut body).expect("snapshot body");
        let horizon = wal_ops.len() as u64;
        write_snapshot_file(&dir, horizon, &body, false).expect("snapshot file");

        let snapshots: Vec<PathBuf> = corruptible_files(&dir)
            .into_iter()
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("snapshot-"))
            })
            .collect();
        prop_assert_eq!(snapshots.len(), 1);
        let wound = corrupt(&snapshots, &corruption);

        // Whatever the wound, open returns Ok with a state equal to some
        // oracle prefix. A bit-flip or overwrite is always caught by the
        // CRC trailer and accounted as quarantined bytes; a truncation is
        // exempt — it cuts the trailer off, and the remains may pass as a
        // (shorter, or empty and thus zero-byte) legacy snapshot.
        let recovered = open_dir(&dir, false).expect("open survives snapshot damage");
        let state = canonical(&recovered.storage);
        prop_assert!(
            prefixes.iter().any(|p| p == &state),
            "state must be an oracle prefix"
        );
        if state != prefixes[horizon as usize] && !wound.truncated {
            prop_assert!(
                recovered.report.bytes_quarantined > 0,
                "a rejected snapshot must be accounted for"
            );
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}
