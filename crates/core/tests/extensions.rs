//! Tests for the extension features: session clustering (§4.3),
//! investigation edges (§4.1) and the exact tree-edit distance metric.

use cqms_core::model::*;
use cqms_core::similarity::DistanceKind;
use cqms_core::{Cqms, CqmsConfig};
use relstore::Engine;
use workload::Domain;

fn lakes_cqms() -> (Cqms, UserId) {
    let mut engine = Engine::new();
    Domain::Lakes.setup(&mut engine, 100, 21);
    let mut c = Cqms::new(engine, CqmsConfig::default());
    let u = c.register_user("u");
    (c, u)
}

#[test]
fn session_clustering_groups_topical_sessions() {
    let (mut c, u) = lakes_cqms();
    // Three sessions about temperatures, three about city geography,
    // separated by large time gaps.
    let mut ts = 0u64;
    for s in 0..6 {
        ts += 10_000;
        let sqls: Vec<String> = if s % 2 == 0 {
            (0..3)
                .map(|i| format!("SELECT * FROM WaterTemp WHERE temp < {}", 10 + i))
                .collect()
        } else {
            (0..3)
                .map(|i| format!("SELECT city FROM CityLocations WHERE pop > {}", 1000 * i))
                .collect()
        };
        for sql in sqls {
            ts += 30;
            c.run_query_at(u, &sql, ts).unwrap();
        }
    }
    assert_eq!(c.storage.session_ids().len(), 6);
    let (sessions, clustering) = c.cluster_sessions(2);
    assert_eq!(sessions.len(), 6);
    // Sessions 0,2,4 (temps) must share a cluster; 1,3,5 (cities) the other.
    let label = |i: usize| clustering.assignment[i];
    assert_eq!(label(0), label(2));
    assert_eq!(label(2), label(4));
    assert_eq!(label(1), label(3));
    assert_eq!(label(3), label(5));
    assert_ne!(label(0), label(1));
}

#[test]
fn investigation_edges_recorded_and_rendered() {
    let (mut c, u) = lakes_cqms();
    let first = c
        .run_query_at(u, "SELECT lake, temp FROM WaterTemp WHERE temp < 18", 100)
        .unwrap();
    let second = c
        .run_query_at(
            u,
            "SELECT * FROM WaterTemp WHERE lake = 'Lake Washington'",
            160,
        )
        .unwrap();
    c.mark_investigation(u, first.id, second.id).unwrap();
    let kinds: Vec<EdgeKind> = c.storage.edges().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EdgeKind::Investigation));
    assert!(kinds.contains(&EdgeKind::Evolution));
    let session = c.storage.get(first.id).unwrap().session;
    let window = c.render_session(session).unwrap();
    assert!(window.contains("(investigates q0)"), "{window}");
}

#[test]
fn investigation_requires_visibility() {
    let (mut c, _u) = lakes_cqms();
    let alice = c.register_user("alice");
    let eve = c.register_user("eve");
    let a = c.run_query(alice, "SELECT * FROM Lakes").unwrap();
    c.set_visibility(alice, a.id, Visibility::Private).unwrap();
    let b = c.run_query(eve, "SELECT * FROM CityLocations").unwrap();
    assert!(c.mark_investigation(eve, a.id, b.id).is_err());
    assert!(c.mark_investigation(alice, a.id, a.id).is_ok());
}

#[test]
fn tree_edit_metric_in_knn() {
    let (mut c, u) = lakes_cqms();
    c.run_query(u, "SELECT * FROM WaterTemp WHERE temp < 18")
        .unwrap();
    c.run_query(u, "SELECT * FROM WaterTemp WHERE temp < 22")
        .unwrap();
    c.run_query(u, "SELECT city, COUNT(*) FROM CityLocations GROUP BY city")
        .unwrap();
    let hits = c
        .similar_queries(
            u,
            "SELECT * FROM WaterTemp WHERE temp < 99",
            3,
            DistanceKind::TreeEdit,
        )
        .unwrap();
    // The two constant-variant queries are perfect template matches.
    assert!(hits[0].score > 0.999);
    assert!(hits[1].score > 0.999);
    assert!(hits[2].score < 0.9);
}

#[test]
fn tree_edit_and_diff_metrics_agree_on_ordering() {
    let (mut c, u) = lakes_cqms();
    c.run_query(u, "SELECT * FROM WaterTemp WHERE temp < 20")
        .unwrap();
    c.run_query(
        u,
        "SELECT lake FROM WaterTemp, Lakes WHERE WaterTemp.lake = Lakes.lake",
    )
    .unwrap();
    c.run_query(u, "SELECT city FROM CityLocations").unwrap();
    let probe = "SELECT * FROM WaterTemp WHERE temp < 5";
    let cheap = c
        .similar_queries(u, probe, 3, DistanceKind::ParseTree)
        .unwrap();
    let exact = c
        .similar_queries(u, probe, 3, DistanceKind::TreeEdit)
        .unwrap();
    // Both rank the constant-variant first and the unrelated query last.
    assert_eq!(cheap[0].id, exact[0].id);
    assert_eq!(cheap[2].id, exact[2].id);
}
