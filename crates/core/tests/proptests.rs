//! Property-based tests for the CQMS core: snapshot durability, metric
//! axioms, candidate-pruned kNN vs brute force, Apriori correctness
//! against brute force, and completion-prefix discipline, all over
//! generator-driven inputs.

use cqms_core::admin::Directory;
use cqms_core::features::extract;
use cqms_core::metaquery::{MetaQueryExecutor, ScoredHit};
use cqms_core::miner::assoc::mine_apriori;
use cqms_core::model::*;
use cqms_core::similarity::{self, DistanceKind};
use cqms_core::storage::{make_record, QueryStorage};
use cqms_core::wal::{MemSink, WalWriter};
use cqms_core::CqmsConfig;
use proptest::prelude::*;
use std::collections::HashSet;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A small SQL generator over the lakes schema: always parseable.
fn sql_strategy() -> impl Strategy<Value = String> {
    let table = prop_oneof![
        Just("WaterTemp"),
        Just("WaterSalinity"),
        Just("CityLocations"),
        Just("Lakes"),
    ];
    let col = prop_oneof![
        Just("temp"),
        Just("salinity"),
        Just("pop"),
        Just("area"),
        Just("month"),
    ];
    let op = prop_oneof![Just("<"), Just(">"), Just("="), Just("<=")];
    (
        table,
        proptest::option::of((col, op, -50i64..50)),
        proptest::option::of(0u64..100),
    )
        .prop_map(|(t, pred, limit)| {
            let mut sql = format!("SELECT * FROM {t}");
            if let Some((c, o, k)) = pred {
                sql.push_str(&format!(" WHERE {c} {o} {k}"));
            }
            if let Some(l) = limit {
                sql.push_str(&format!(" LIMIT {l}"));
            }
            sql
        })
}

fn annotation_strategy() -> impl Strategy<Value = String> {
    // Includes the characters the snapshot format must escape.
    "[a-zA-Z0-9 \t\n\\\\'\"%_-]{0,40}"
}

fn record_strategy(id: u64) -> impl Strategy<Value = QueryRecord> {
    (
        sql_strategy(),
        0u32..4,
        0u64..100_000,
        0u64..20,
        prop_oneof![
            Just(Visibility::Public),
            Just(Visibility::Private),
            (0u32..3).prop_map(|g| Visibility::Group(GroupId(g))),
        ],
        proptest::collection::vec(annotation_strategy(), 0..3),
        any::<bool>(),
    )
        .prop_map(move |(sql, user, ts, session, vis, notes, success)| {
            let stmt = sqlparse::parse(&sql).ok();
            let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
            let mut rec = make_record(
                QueryId(id),
                UserId(user),
                ts,
                &sql,
                stmt,
                feats,
                RuntimeFeatures {
                    elapsed_us: ts % 10_000,
                    cardinality: ts % 97,
                    success,
                    ..Default::default()
                },
                OutputSummary::None,
                SessionId(session),
                vis,
            );
            rec.annotations = notes
                .into_iter()
                .map(|text| Annotation {
                    author: UserId(user),
                    at: ts,
                    text,
                    fragment: None,
                })
                .collect();
            rec
        })
}

fn records_strategy() -> impl Strategy<Value = Vec<QueryRecord>> {
    proptest::collection::vec(0u64..1, 1..12).prop_flat_map(|seeds| {
        let n = seeds.len();
        let recs: Vec<_> = (0..n as u64).map(record_strategy).collect();
        recs
    })
}

fn build_storage(records: Vec<QueryRecord>) -> QueryStorage {
    let mut st = QueryStorage::new();
    for (i, mut r) in records.into_iter().enumerate() {
        r.id = QueryId(i as u64);
        st.insert(r);
    }
    st
}

/// Reference kNN: full scan over live visible records with the exact
/// signature kernels, brute-force ordering (score desc, id asc).
fn brute_knn(
    st: &QueryStorage,
    dir: &Directory,
    cfg: &CqmsConfig,
    viewer: UserId,
    probe: &QueryRecord,
    metric: DistanceKind,
    k: usize,
) -> Vec<ScoredHit> {
    let psig = st.probe_signature(probe);
    let mut brute: Vec<ScoredHit> = st
        .iter_live()
        .filter(|r| r.id != probe.id && dir.can_see(viewer, r))
        .map(|r| ScoredHit {
            id: r.id,
            score: 1.0
                - similarity::distance_with(
                    probe,
                    &psig,
                    r,
                    st.signature(r.id).unwrap(),
                    metric,
                    cfg,
                ),
        })
        .collect();
    brute.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    brute.truncate(k);
    brute
}

/// Records for the kNN-pruning property: the plain SQL generator plus
/// feature-less records (unparseable text ⇒ empty feature sets, no parse
/// tree) and optional output summaries, which together exercise every
/// pruning branch (posting candidates, emptiness patterns, output blend).
fn knn_record_strategy(id: u64) -> impl Strategy<Value = QueryRecord> {
    (
        prop_oneof![
            4 => sql_strategy(),
            1 => Just("not really sql at all".to_string()),
        ],
        0u32..4,
        0u64..100_000,
        prop_oneof![
            Just(Visibility::Public),
            Just(Visibility::Private),
            (0u32..3).prop_map(|g| Visibility::Group(GroupId(g))),
        ],
        proptest::option::of(proptest::collection::vec("[a-c]{1,2}", 1..4)),
    )
        .prop_map(move |(sql, user, ts, vis, out_rows)| {
            let stmt = sqlparse::parse(&sql).ok();
            let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
            let mut rec = make_record(
                QueryId(id),
                UserId(user),
                ts,
                &sql,
                stmt,
                feats,
                RuntimeFeatures {
                    success: true,
                    ..Default::default()
                },
                OutputSummary::None,
                SessionId(id),
                vis,
            );
            if let Some(rows) = out_rows {
                rec.summary = OutputSummary::Full {
                    columns: vec!["c".into()],
                    rows: rows.into_iter().map(|v| vec![v]).collect(),
                };
            }
            rec
        })
}

/// One step of a generated WAL workload: every logged mutation kind,
/// plus explicit flush points and full snapshot cycles, in any order.
#[derive(Debug, Clone)]
enum WalStep {
    Insert(String),
    Delete(usize),
    Flag(usize),
    Repair(usize),
    Annotate(usize, String),
    Visibility(usize, Visibility),
    Edge(usize, usize, bool),
    Reindex(usize),
    Flush,
    Snapshot,
}

fn wal_step_strategy() -> impl Strategy<Value = WalStep> {
    prop_oneof![
        4 => sql_strategy().prop_map(WalStep::Insert),
        1 => (0usize..32).prop_map(WalStep::Delete),
        1 => (0usize..32).prop_map(WalStep::Flag),
        1 => (0usize..32).prop_map(WalStep::Repair),
        1 => ((0usize..32), annotation_strategy())
            .prop_map(|(i, t)| WalStep::Annotate(i, t)),
        1 => ((0usize..32), any::<bool>()).prop_map(|(i, public)| {
            WalStep::Visibility(
                i,
                if public { Visibility::Public } else { Visibility::Private },
            )
        }),
        1 => ((0usize..32), (0usize..32), any::<bool>())
            .prop_map(|(a, b, inv)| WalStep::Edge(a, b, inv)),
        1 => (0usize..32).prop_map(WalStep::Reindex),
        2 => Just(WalStep::Flush),
        1 => Just(WalStep::Snapshot),
    ]
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snapshot → load preserves every persisted field and the derived
    /// search structures.
    #[test]
    fn snapshot_roundtrip(records in records_strategy()) {
        let st = build_storage(records);
        let mut buf = Vec::new();
        st.snapshot(&mut buf).unwrap();
        let restored = QueryStorage::load(&buf[..]).unwrap();
        prop_assert_eq!(restored.len(), st.len());
        prop_assert_eq!(restored.live_count(), st.live_count());
        for r in st.iter() {
            let q = restored.get(r.id).unwrap();
            prop_assert_eq!(&q.raw_sql, &r.raw_sql);
            prop_assert_eq!(q.user, r.user);
            prop_assert_eq!(q.ts, r.ts);
            prop_assert_eq!(q.session, r.session);
            prop_assert_eq!(q.visibility, r.visibility);
            prop_assert_eq!(q.annotations.len(), r.annotations.len());
            for (a, b) in q.annotations.iter().zip(&r.annotations) {
                prop_assert_eq!(&a.text, &b.text);
            }
            prop_assert_eq!(q.template_fp, r.template_fp);
            prop_assert_eq!(q.runtime.success, r.runtime.success);
        }
        // Popularity counts rebuilt identically.
        prop_assert_eq!(restored.max_popularity(), st.max_popularity());
    }

    /// Snapshot → load over storages that also saw deletes and
    /// session-graph edges: live records, both text indexes, the feature
    /// relations, the popularity table and the edges all survive.
    #[test]
    fn snapshot_roundtrip_with_deletes_and_edges(
        records in records_strategy(),
        del_seeds in proptest::collection::vec(any::<bool>(), 12),
        edge_seeds in proptest::collection::vec((0usize..12, 0usize..12, any::<bool>()), 0..6),
    ) {
        let mut st = build_storage(records);
        let n = st.len();
        // Session-graph edges between arbitrary pairs.
        for (a, b, investigation) in edge_seeds {
            let from = QueryId((a % n) as u64);
            let to = QueryId((b % n) as u64);
            let edits = match (
                st.get(from).ok().and_then(|r| r.statement.clone()),
                st.get(to).ok().and_then(|r| r.statement.clone()),
            ) {
                (Some(x), Some(y)) => sqlparse::diff_statements(&x, &y),
                _ => Vec::new(),
            };
            st.add_edge(SessionEdge {
                from,
                to,
                kind: if investigation { EdgeKind::Investigation } else { EdgeKind::Evolution },
                edits,
            });
        }
        // Tombstone a random subset.
        for (i, del) in del_seeds.iter().take(n).enumerate() {
            if *del {
                st.delete(QueryId(i as u64)).unwrap();
            }
        }

        let mut buf = Vec::new();
        st.snapshot(&mut buf).unwrap();
        let restored = QueryStorage::load(&buf[..]).unwrap();

        prop_assert_eq!(restored.len(), st.len());
        prop_assert_eq!(restored.live_count(), st.live_count());
        for r in st.iter() {
            let q = restored.get(r.id).unwrap();
            prop_assert_eq!(q.is_live(), r.is_live());
            prop_assert_eq!(&q.raw_sql, &r.raw_sql);
            prop_assert_eq!(q.user, r.user);
            prop_assert_eq!(q.session, r.session);
            prop_assert_eq!(q.visibility, r.visibility);
            prop_assert_eq!(q.template_fp, r.template_fp);
            prop_assert_eq!(q.annotations.len(), r.annotations.len());
            // Index membership mirrors liveness, on both sides.
            prop_assert_eq!(r.is_live(), st.text_index().contains(r.id.0));
            prop_assert_eq!(
                restored.text_index().contains(r.id.0),
                st.text_index().contains(r.id.0)
            );
        }
        // Popularity table rebuilt identically (deletes included).
        prop_assert_eq!(restored.template_histogram(), st.template_histogram());
        // Feature relations: SQL meta-queries see the same live qids.
        let visible_qids = |s: &QueryStorage| -> Vec<String> {
            let mut v: Vec<String> = s
                .meta_engine()
                .query("SELECT qid FROM Queries")
                .unwrap()
                .rows
                .iter()
                .map(|row| row[0].render())
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(visible_qids(&restored), visible_qids(&st));
        // Edges survive with endpoints and kind intact.
        prop_assert_eq!(restored.edges().len(), st.edges().len());
        for (a, b) in restored.edges().iter().zip(st.edges()) {
            prop_assert_eq!(a.from, b.from);
            prop_assert_eq!(a.to, b.to);
            prop_assert_eq!(a.kind, b.kind);
        }
    }

    /// Candidate-pruned kNN returns exactly the brute-force top-k — same
    /// ids, same scores, same tie-breaking — on randomized workloads
    /// including records with empty feature sets, mixed visibility and
    /// tombstones, for every pruned metric.
    #[test]
    fn pruned_knn_matches_brute_force(
        records in proptest::collection::vec(0u64..1, 2..20).prop_flat_map(|seeds| {
            (0..seeds.len() as u64).map(knn_record_strategy).collect::<Vec<_>>()
        }),
        del_seeds in proptest::collection::vec(any::<bool>(), 20),
        probe_sql in prop_oneof![
            4 => sql_strategy(),
            1 => Just("word salad, no features".to_string()),
        ],
        viewer in 0u32..4,
        k in 1usize..6,
    ) {
        let mut st = QueryStorage::new();
        for (i, mut r) in records.into_iter().enumerate() {
            r.id = QueryId(i as u64);
            st.insert(r);
        }
        let n = st.len();
        for (i, del) in del_seeds.iter().take(n).enumerate() {
            if *del {
                st.delete(QueryId(i as u64)).unwrap();
            }
        }
        let dir = Directory::new();
        let cfg = CqmsConfig::default();
        let viewer = UserId(viewer);
        let stmt = sqlparse::parse(&probe_sql).ok();
        let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
        let probe = make_record(
            QueryId(u64::MAX), viewer, 0, &probe_sql, stmt, feats,
            RuntimeFeatures::default(), OutputSummary::None,
            SessionId(u64::MAX), Visibility::Private,
        );
        let psig = st.probe_signature(&probe);
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        for metric in [DistanceKind::Features, DistanceKind::Combined] {
            // Brute force: full scan, same distance kernels, no pruning.
            let mut brute: Vec<ScoredHit> = st
                .iter_live()
                .filter(|r| dir.can_see(viewer, r))
                .map(|r| ScoredHit {
                    id: r.id,
                    score: 1.0 - similarity::distance_with(
                        &probe, &psig, r, st.signature(r.id).unwrap(), metric, &cfg,
                    ),
                })
                .collect();
            brute.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.id.cmp(&b.id))
            });
            brute.truncate(k);
            let pruned = mq.knn(viewer, &probe, k, metric);
            prop_assert_eq!(&pruned, &brute, "{:?} pruning diverged", metric);
        }
    }

    /// VP-tree TreeEdit kNN returns exactly the brute-force top-k — ids
    /// and scores — through the index's whole coherence lifecycle: lazy
    /// build over a store with tombstones, query-time filtering of
    /// flagged records and ACLs, revival of repaired records, incremental
    /// inserts into the already-built tree, and further tombstoning
    /// (possibly crossing the rebuild threshold). Statement-less records
    /// (distance exactly 1.0, outside the index) are covered by the
    /// generator.
    #[test]
    fn vp_tree_knn_matches_brute_force(
        records in proptest::collection::vec(0u64..1, 2..16).prop_flat_map(|seeds| {
            (0..seeds.len() as u64).map(knn_record_strategy).collect::<Vec<_>>()
        }),
        extra in proptest::collection::vec(0u64..1, 1..5).prop_flat_map(|seeds| {
            (100..100 + seeds.len() as u64).map(knn_record_strategy).collect::<Vec<_>>()
        }),
        del_seeds in proptest::collection::vec(any::<bool>(), 16),
        flag_seeds in proptest::collection::vec(any::<bool>(), 16),
        late_del_seeds in proptest::collection::vec(any::<bool>(), 16),
        probe_sql in prop_oneof![
            4 => sql_strategy(),
            1 => Just("word salad, no features".to_string()),
        ],
        viewer in 0u32..4,
        k in 1usize..6,
    ) {
        let mut st = QueryStorage::new();
        for (i, mut r) in records.into_iter().enumerate() {
            r.id = QueryId(i as u64);
            st.insert(r);
        }
        let n = st.len();
        for (i, del) in del_seeds.iter().take(n).enumerate() {
            if *del {
                st.delete(QueryId(i as u64)).unwrap();
            }
        }
        let dir = Directory::new();
        let cfg = CqmsConfig::default();
        let viewer = UserId(viewer);
        let stmt = sqlparse::parse(&probe_sql).ok();
        let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
        let probe = make_record(
            QueryId(u64::MAX), viewer, 0, &probe_sql, stmt, feats,
            RuntimeFeatures::default(), OutputSummary::None,
            SessionId(u64::MAX), Visibility::Private,
        );
        let check = |st: &QueryStorage, phase: &str| -> Result<(), TestCaseError> {
            let mq = MetaQueryExecutor::new(st, &dir, &cfg);
            let got = mq.knn(viewer, &probe, k, DistanceKind::TreeEdit);
            let want = brute_knn(st, &dir, &cfg, viewer, &probe, DistanceKind::TreeEdit, k);
            prop_assert_eq!(&got, &want, "TreeEdit diverged in phase `{}`", phase);
            Ok(())
        };
        // Phase 1: lazy build over the tombstoned store.
        check(&st, "build")?;
        // Phase 2: flag a subset — indexed but hidden at query time.
        for (i, flag) in flag_seeds.iter().take(n).enumerate() {
            if *flag {
                let _ = st.set_validity(
                    QueryId(i as u64),
                    Validity::Flagged { reason: "drift".into(), at: 1 },
                );
            }
        }
        check(&st, "flagged")?;
        // Phase 3: repair them — findable again without any index change.
        for (i, flag) in flag_seeds.iter().take(n).enumerate() {
            if *flag && st.get(QueryId(i as u64)).unwrap().validity != Validity::Deleted {
                st.set_validity(
                    QueryId(i as u64),
                    Validity::Repaired { original_sql: "x".into(), at: 2 },
                ).unwrap();
            }
        }
        check(&st, "repaired")?;
        // Phase 4: incremental inserts into the already-built tree.
        for (i, mut r) in extra.into_iter().enumerate() {
            r.id = QueryId((n + i) as u64);
            st.insert(r);
        }
        check(&st, "inserted")?;
        // Phase 5: more tombstones — may cross the rebuild threshold.
        let total = st.len();
        for (i, del) in late_del_seeds.iter().take(total).enumerate() {
            if *del {
                st.delete(QueryId(i as u64)).unwrap();
            }
        }
        check(&st, "late-deletes")?;
    }

    /// Delta-log replay: mutations that land *during* a double-buffered
    /// index rebuild — inserts past the collected horizon, tombstones,
    /// flag/repair transitions and a reindex — are replayed (or kept
    /// masked by the override log) when the build publishes, so
    /// registry-served kNN (ids and scores, TreeEdit and ParseTree)
    /// equals brute force on the post-publish state. No probe ever sees
    /// a missing record, before or after the swap.
    #[test]
    fn index_rebuild_delta_replay_matches_brute_force(
        records in proptest::collection::vec(0u64..1, 2..12).prop_flat_map(|seeds| {
            (0..seeds.len() as u64).map(knn_record_strategy).collect::<Vec<_>>()
        }),
        mid_inserts in proptest::collection::vec(0u64..1, 1..6).prop_flat_map(|seeds| {
            (100..100 + seeds.len() as u64).map(knn_record_strategy).collect::<Vec<_>>()
        }),
        del_seeds in proptest::collection::vec(any::<bool>(), 12),
        mid_del_seeds in proptest::collection::vec(any::<bool>(), 18),
        mid_flag_seeds in proptest::collection::vec(any::<bool>(), 18),
        reindex_pick in 0usize..12,
        probe_sql in prop_oneof![
            4 => sql_strategy(),
            1 => Just("word salad, no features".to_string()),
        ],
        viewer in 0u32..4,
        k in 1usize..6,
    ) {
        let mut st = QueryStorage::new();
        for (i, mut r) in records.into_iter().enumerate() {
            r.id = QueryId(i as u64);
            st.insert(r);
        }
        let n = st.len();
        for (i, del) in del_seeds.iter().take(n).enumerate() {
            if *del {
                st.delete(QueryId(i as u64)).unwrap();
            }
        }
        // Seal once so the mid-build window below runs against a real
        // published generation, not just the head.
        st.schedule_index_rebuild();
        st.run_index_maintenance();
        let sealed_gen = st.index_generation();

        // Open the mid-build window: generation N+1 is built from the
        // current snapshot…
        st.schedule_index_rebuild();
        let build = st.begin_index_rebuild();
        // …while inserts, tombstones, flag/repair transitions and a
        // reindex land before it publishes.
        for (i, mut r) in mid_inserts.into_iter().enumerate() {
            r.id = QueryId((n + i) as u64);
            st.insert(r);
        }
        let total = st.len();
        for (i, del) in mid_del_seeds.iter().take(total).enumerate() {
            if *del {
                st.delete(QueryId(i as u64)).unwrap();
            }
        }
        for (i, flag) in mid_flag_seeds.iter().take(total).enumerate() {
            if *flag && st.get(QueryId(i as u64)).unwrap().validity != Validity::Deleted {
                st.set_validity(
                    QueryId(i as u64),
                    Validity::Flagged { reason: "drift".into(), at: 1 },
                ).unwrap();
                st.set_validity(
                    QueryId(i as u64),
                    Validity::Repaired { original_sql: "x".into(), at: 2 },
                ).unwrap();
            }
        }
        let reindexed = QueryId((reindex_pick % n) as u64);
        if st.get(reindexed).unwrap().validity != Validity::Deleted {
            st.reindex(reindexed).unwrap();
        }
        // Publish: delta replay + one atomic swap.
        st.publish_index_rebuild(build);
        prop_assert_eq!(st.index_generation(), sealed_gen + 1);

        let dir = Directory::new();
        let cfg = CqmsConfig::default();
        let viewer = UserId(viewer);
        let stmt = sqlparse::parse(&probe_sql).ok();
        let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
        let probe = make_record(
            QueryId(u64::MAX), viewer, 0, &probe_sql, stmt, feats,
            RuntimeFeatures::default(), OutputSummary::None,
            SessionId(u64::MAX), Visibility::Private,
        );
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        for metric in [DistanceKind::TreeEdit, DistanceKind::ParseTree] {
            let got = mq.knn(viewer, &probe, k, metric);
            let want = brute_knn(&st, &dir, &cfg, viewer, &probe, metric, k);
            prop_assert_eq!(&got, &want, "{:?} diverged after delta replay", metric);
        }
    }

    /// Bounded ParseTree kNN (diff-profile lower-bound sweep) returns
    /// exactly the brute-force top-k — ids and scores — over stores with
    /// tombstones, statement-less records and mixed ACLs.
    #[test]
    fn parsetree_bounded_knn_matches_brute_force(
        records in proptest::collection::vec(0u64..1, 2..20).prop_flat_map(|seeds| {
            (0..seeds.len() as u64).map(knn_record_strategy).collect::<Vec<_>>()
        }),
        del_seeds in proptest::collection::vec(any::<bool>(), 20),
        flag_seeds in proptest::collection::vec(any::<bool>(), 20),
        probe_sql in prop_oneof![
            4 => sql_strategy(),
            1 => Just("word salad, no features".to_string()),
        ],
        viewer in 0u32..4,
        k in 1usize..6,
    ) {
        let mut st = QueryStorage::new();
        for (i, mut r) in records.into_iter().enumerate() {
            r.id = QueryId(i as u64);
            st.insert(r);
        }
        let n = st.len();
        for (i, del) in del_seeds.iter().take(n).enumerate() {
            if *del {
                st.delete(QueryId(i as u64)).unwrap();
            }
        }
        for (i, flag) in flag_seeds.iter().take(n).enumerate() {
            if *flag && st.get(QueryId(i as u64)).unwrap().validity != Validity::Deleted {
                st.set_validity(
                    QueryId(i as u64),
                    Validity::Flagged { reason: "drift".into(), at: 1 },
                ).unwrap();
            }
        }
        let dir = Directory::new();
        let cfg = CqmsConfig::default();
        let viewer = UserId(viewer);
        let stmt = sqlparse::parse(&probe_sql).ok();
        let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
        let probe = make_record(
            QueryId(u64::MAX), viewer, 0, &probe_sql, stmt, feats,
            RuntimeFeatures::default(), OutputSummary::None,
            SessionId(u64::MAX), Visibility::Private,
        );
        let mq = MetaQueryExecutor::new(&st, &dir, &cfg);
        let got = mq.knn(viewer, &probe, k, DistanceKind::ParseTree);
        let want = brute_knn(&st, &dir, &cfg, viewer, &probe, DistanceKind::ParseTree, k);
        prop_assert_eq!(&got, &want, "ParseTree pruning diverged");
    }

    /// The two cheap structural lower bounds are sound on generated query
    /// pairs: the tree-shape (size + label histogram) bound never exceeds
    /// the exact Zhang–Shasha distance, and the SELECT-profile bound
    /// never exceeds the exact diff distance.
    #[test]
    fn structural_lower_bounds_are_sound(a in sql_strategy(), b in sql_strategy()) {
        let sa = sqlparse::parse(&a).unwrap();
        let sb = sqlparse::parse(&b).unwrap();
        let ta = sqlparse::statement_tree(&sqlparse::strip_constants(&sa));
        let tb = sqlparse::statement_tree(&sqlparse::strip_constants(&sb));
        let (ha, hb) = (sqlparse::TreeShape::of(&ta), sqlparse::TreeShape::of(&tb));
        let ted = sqlparse::tree_edit_distance(&ta, &tb);
        prop_assert!(sqlparse::tree_edit_lower_bound(&ha, &hb) <= ted);
        prop_assert!(
            sqlparse::normalized_tree_lower_bound(&ha, &hb)
                <= sqlparse::normalized_tree_distance(&ta, &tb) + 1e-12
        );
        if let (sqlparse::Statement::Select(pa), sqlparse::Statement::Select(pb)) = (&sa, &sb) {
            let (fa, fb) = (sqlparse::SelectProfile::build(pa), sqlparse::SelectProfile::build(pb));
            prop_assert!(
                sqlparse::edit_distance_lower_bound(&fa, &fb)
                    <= sqlparse::diff::edit_distance_normalized(pa, pb) + 1e-12
            );
        }
    }

    /// Snapshot → load reproduces the similarity-signature state exactly:
    /// the interner, every per-record signature, the posting index and
    /// the live counter (summaries are not persisted, so generated
    /// records carry none).
    #[test]
    fn snapshot_roundtrip_preserves_signature_state(
        records in records_strategy(),
        del_seeds in proptest::collection::vec(any::<bool>(), 12),
        flag_seeds in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let mut st = build_storage(records);
        let n = st.len();
        // Flag a subset (maintenance-style live → non-live transitions
        // unpost the record), then tombstone a possibly-overlapping one.
        for (i, flag) in flag_seeds.iter().take(n).enumerate() {
            if *flag {
                st.set_validity(
                    QueryId(i as u64),
                    Validity::Flagged { reason: "drift".into(), at: 1 },
                ).unwrap();
            }
        }
        for (i, del) in del_seeds.iter().take(n).enumerate() {
            if *del {
                st.delete(QueryId(i as u64)).unwrap();
            }
        }
        let mut buf = Vec::new();
        st.snapshot(&mut buf).unwrap();
        let restored = QueryStorage::load(&buf[..]).unwrap();
        prop_assert_eq!(restored.interner(), st.interner());
        prop_assert_eq!(restored.signatures(), st.signatures());
        // Posting lists may differ in stale entries (lazy compaction runs
        // on thresholds; a freshly restored storage has none), so compare
        // the canonical live view per interned feature.
        for fid in 0..st.interner().len() as u32 {
            prop_assert_eq!(
                restored.live_posting_ids(fid),
                st.live_posting_ids(fid),
                "feature {} diverges",
                fid
            );
        }
        prop_assert_eq!(restored.live_count(), st.live_count());
    }

    /// WAL replay reproduces the live state exactly under arbitrary
    /// interleavings of logged mutations, flush points and snapshot
    /// cycles (snapshot → rotate → prune). After a final flush, recovery
    /// from the durable in-memory log — newest snapshot plus whatever
    /// segments survived pruning — must equal the storage that wrote it.
    #[test]
    fn wal_replay_matches_live_state_across_snapshot_interleavings(
        steps in proptest::collection::vec(wal_step_strategy(), 1..40),
    ) {
        let (sink, log) = MemSink::new();
        let mut st = QueryStorage::new();
        st.attach_wal(WalWriter::new(Box::new(sink), 1));
        for step in steps {
            let n = st.len();
            match step {
                WalStep::Insert(sql) => {
                    let stmt = sqlparse::parse(&sql).ok();
                    let feats = stmt.as_ref().map(|s| extract(s, None)).unwrap_or_default();
                    let id = n as u64;
                    st.insert(make_record(
                        QueryId(id),
                        UserId((id % 3) as u32),
                        1_000 + id * 60,
                        &sql,
                        stmt,
                        feats,
                        RuntimeFeatures { elapsed_us: id, success: true, ..Default::default() },
                        OutputSummary::None,
                        SessionId(id / 4),
                        Visibility::Public,
                    ));
                }
                WalStep::Delete(i) if n > 0 => {
                    let _ = st.delete(QueryId((i % n) as u64));
                }
                WalStep::Flag(i) if n > 0 => {
                    let id = QueryId((i % n) as u64);
                    if st.get(id).unwrap().validity != Validity::Deleted {
                        st.set_validity(
                            id,
                            Validity::Flagged { reason: "drift".into(), at: 1 },
                        ).unwrap();
                    }
                }
                WalStep::Repair(i) if n > 0 => {
                    let id = QueryId((i % n) as u64);
                    if st.get(id).unwrap().validity != Validity::Deleted {
                        st.set_validity(
                            id,
                            Validity::Repaired { original_sql: "x".into(), at: 2 },
                        ).unwrap();
                    }
                }
                WalStep::Annotate(i, text) if n > 0 => {
                    let _ = st.annotate(
                        QueryId((i % n) as u64),
                        Annotation { author: UserId(0), at: 9, text, fragment: None },
                    );
                }
                WalStep::Visibility(i, vis) if n > 0 => {
                    st.set_visibility(QueryId((i % n) as u64), vis).unwrap();
                }
                WalStep::Edge(a, b, inv) if n > 0 => {
                    let from = QueryId((a % n) as u64);
                    let to = QueryId((b % n) as u64);
                    let edits = match (
                        st.get(from).ok().and_then(|r| r.statement.clone()),
                        st.get(to).ok().and_then(|r| r.statement.clone()),
                    ) {
                        (Some(x), Some(y)) => sqlparse::diff_statements(&x, &y),
                        _ => Vec::new(),
                    };
                    st.add_edge(SessionEdge {
                        from,
                        to,
                        kind: if inv { EdgeKind::Investigation } else { EdgeKind::Evolution },
                        edits,
                    });
                }
                WalStep::Reindex(i) if n > 0 => {
                    let id = QueryId((i % n) as u64);
                    if st.get(id).unwrap().validity != Validity::Deleted {
                        st.reindex(id).unwrap();
                    }
                }
                WalStep::Flush => st.wal_flush().unwrap(),
                WalStep::Snapshot => {
                    let mut body = Vec::new();
                    st.snapshot(&mut body).unwrap();
                    let horizon = st.wal_last_lsn().unwrap_or(0);
                    st.wal_write_snapshot(horizon, &body).unwrap();
                }
                // Index-targeting steps against an empty store: no-ops.
                _ => {}
            }
        }
        st.wal_flush().unwrap();
        let (recovered, report) = log.lock().recover().unwrap();
        prop_assert_eq!(report.frames_failed, 0, "replay failures: {}", report);
        prop_assert_eq!(recovered.len(), st.len());
        prop_assert_eq!(recovered.live_count(), st.live_count());
        prop_assert_eq!(recovered.template_histogram(), st.template_histogram());
        for r in st.iter() {
            let q = recovered.get(r.id).unwrap();
            prop_assert_eq!(&q.raw_sql, &r.raw_sql);
            prop_assert_eq!(&q.validity, &r.validity);
            prop_assert_eq!(q.visibility, r.visibility);
            prop_assert_eq!(q.session, r.session);
            prop_assert_eq!(q.template_fp, r.template_fp);
            prop_assert_eq!(q.annotations.len(), r.annotations.len());
        }
        prop_assert_eq!(recovered.edges().len(), st.edges().len());
    }

    /// Distance metrics satisfy identity, symmetry and [0, 1] bounds.
    #[test]
    fn metric_axioms(a in sql_strategy(), b in sql_strategy()) {
        let cfg = CqmsConfig::default();
        let mk = |id: u64, sql: &str| {
            let stmt = sqlparse::parse(sql).unwrap();
            let feats = extract(&stmt, None);
            make_record(
                QueryId(id), UserId(0), 0, sql, Some(stmt), feats,
                RuntimeFeatures { success: true, ..Default::default() },
                OutputSummary::None, SessionId(0), Visibility::Public,
            )
        };
        let ra = mk(0, &a);
        let rb = mk(1, &b);
        for kind in [
            DistanceKind::Features,
            DistanceKind::ParseTree,
            DistanceKind::TreeEdit,
            DistanceKind::Combined,
        ] {
            let daa = similarity::distance(&ra, &ra, kind, &cfg);
            prop_assert!(daa.abs() < 1e-9, "{kind:?} identity failed: {daa}");
            let dab = similarity::distance(&ra, &rb, kind, &cfg);
            let dba = similarity::distance(&rb, &ra, kind, &cfg);
            prop_assert!((dab - dba).abs() < 1e-9, "{kind:?} asymmetric");
            prop_assert!((0.0..=1.0).contains(&dab), "{kind:?} out of range: {dab}");
        }
    }

    /// Apriori's pair rules agree exactly with brute-force counting.
    #[test]
    fn apriori_matches_brute_force(
        transactions in proptest::collection::vec(
            proptest::collection::vec(0u8..6, 1..5),
            1..40,
        ),
        min_support in 1u32..5,
    ) {
        let txs: Vec<Vec<String>> = transactions
            .iter()
            .map(|t| {
                let mut items: Vec<String> = t.iter().map(|i| format!("i{i}")).collect();
                items.sort();
                items.dedup();
                items
            })
            .collect();
        let rules = mine_apriori(&txs, min_support, 0.0);
        // Brute force every single-item => single-item rule.
        for a in 0..6u8 {
            for b in 0..6u8 {
                if a == b {
                    continue;
                }
                let ia = format!("i{a}");
                let ib = format!("i{b}");
                let count_a = txs.iter().filter(|t| t.contains(&ia)).count() as u32;
                let count_ab = txs
                    .iter()
                    .filter(|t| t.contains(&ia) && t.contains(&ib))
                    .count() as u32;
                let mined = rules.iter().find(|r| {
                    r.antecedent == vec![ia.clone()] && r.consequent == ib
                });
                if count_ab >= min_support {
                    let rule = mined.expect("frequent pair rule missing");
                    let expect_conf = count_ab as f64 / count_a as f64;
                    prop_assert!((rule.confidence - expect_conf).abs() < 1e-9);
                    let expect_supp = count_ab as f64 / txs.len() as f64;
                    prop_assert!((rule.support - expect_supp).abs() < 1e-9);
                } else {
                    prop_assert!(mined.is_none(), "infrequent rule {ia}=>{ib} mined");
                }
            }
        }
    }

    /// Suggestions never violate the typed prefix, and scores stay ranked.
    #[test]
    fn completion_respects_prefix(prefix in "[A-Za-z]{0,4}") {
        let mut engine = relstore::Engine::new();
        workload::Domain::Lakes.setup(&mut engine, 20, 5);
        let mut cqms = cqms_core::Cqms::new(engine, CqmsConfig::default());
        let u = cqms.register_user("u");
        for i in 0..5 {
            cqms.run_query(u, &format!("SELECT * FROM WaterTemp WHERE temp < {i}"))
                .unwrap();
        }
        let partial = format!("SELECT * FROM {prefix}");
        let suggestions = cqms.complete(u, &partial, 5);
        for s in &suggestions {
            prop_assert!(
                s.text.to_lowercase().starts_with(&prefix.to_lowercase()),
                "suggestion {} ignores prefix {prefix}",
                s.text
            );
        }
        for w in suggestions.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// Session segmentation is deterministic and never merges users.
    #[test]
    fn segmentation_deterministic(records in records_strategy()) {
        let st = build_storage(records);
        let cfg = CqmsConfig::default();
        let a = cqms_core::miner::sessions::segment_log(&st, &cfg);
        let b = cqms_core::miner::sessions::segment_log(&st, &cfg);
        prop_assert_eq!(&a, &b);
        // Queries of different users never share a predicted session.
        let mut owner: std::collections::HashMap<SessionId, UserId> = Default::default();
        for r in st.iter() {
            let s = a[&r.id];
            if let Some(prev) = owner.insert(s, r.user) {
                prop_assert_eq!(prev, r.user, "session crosses users");
            }
        }
    }

    /// Feature items are stable under canonical re-printing of the query.
    #[test]
    fn feature_items_canonical(sql in sql_strategy()) {
        let stmt = sqlparse::parse(&sql).unwrap();
        let printed = sqlparse::to_sql(&sqlparse::canonicalize(&stmt));
        let reparsed = sqlparse::parse(&printed).unwrap();
        let a: HashSet<String> = extract(&stmt, None).items().into_iter().collect();
        let b: HashSet<String> = extract(&reparsed, None).items().into_iter().collect();
        prop_assert_eq!(a, b);
    }
}
