//! Chaos suite: the robustness promises of PR 8 under injected faults.
//!
//! Every test here drives a *deterministic* failpoint from
//! `cqms_core::faults` — a WAL device that errors, a shard that answers
//! slowly, a miner epoch that panics — and pins the contract the system
//! keeps while degraded:
//!
//! * **Durability acknowledgement**: an `Ok` from the ingest path is a
//!   durability promise; a shed or flush-failed slot is *never* one. The
//!   oracle is `MemLog::recover()` — the storage a crash right now would
//!   leave behind.
//! * **Admission**: the depth gate sheds fast (while the write lock is
//!   still held by someone else) and the per-user token bucket starves
//!   only the heavy user, never neighbors.
//! * **Deadline reads**: a slow shard costs its hits, not the caller's
//!   latency — and the partial answer is provably consistent with the
//!   full (and unsharded) answer.
//! * **Self-healing**: the background miner survives an injected epoch
//!   panic; transient WAL sync/snapshot faults are retried away; a
//!   corrupt shard directory degrades one shard, not the deployment.

use cqms_core::faults::{self, FaultAction, FaultPlan};
use cqms_core::model::*;
use cqms_core::similarity::DistanceKind;
use cqms_core::wal::{MemSink, WalWriter};
use cqms_core::{Cqms, CqmsConfig, CqmsError, CqmsService, FaultySink, IngestItem, ShardedCqms};
use relstore::Engine;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::Domain;

fn engine() -> Engine {
    let mut e = Engine::new();
    Domain::Lakes.setup(&mut e, 60, 3);
    e
}

fn ram_config() -> CqmsConfig {
    CqmsConfig {
        wal_fsync: false,
        ..CqmsConfig::default()
    }
}

/// A RAM service whose WAL is an in-memory sink behind a [`FaultySink`]:
/// returns the service, the plan that faults the *sink*, and the shared
/// log handle (`log.lock().recover()` = what a crash now would recover).
fn faulty_wal_service(
    config: CqmsConfig,
) -> (
    CqmsService,
    Arc<FaultPlan>,
    Arc<parking_lot::Mutex<cqms_core::wal::MemLog>>,
) {
    let (sink, log) = MemSink::new();
    let plan = Arc::new(FaultPlan::new());
    let mut cqms = Cqms::new(engine(), config);
    cqms.storage.attach_wal(WalWriter::new(
        Box::new(FaultySink::new(Box::new(sink), plan.clone())),
        1,
    ));
    (CqmsService::new(cqms), plan, log)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cqms-faults-{tag}-{}", std::process::id()))
}

// ---------------------------------------------------------------------
// Durability acknowledgement under WAL faults
// ---------------------------------------------------------------------

/// A failing WAL sync rejects the whole batch — and nothing the batch
/// wrote is durable. Once the device recovers, the next batch is
/// acknowledged and durable. (An earlier *unacknowledged* batch may also
/// become durable then: `Ok` promises durability, `Err` promises
/// nothing either way.)
#[test]
fn wal_sync_failure_rejects_batch_and_nothing_rejected_is_promised() {
    let (svc, plan, log) = faulty_wal_service(ram_config());
    let user = svc.register_user("alice");

    plan.arm(faults::WAL_SYNC, FaultAction::Fail, None);
    let batch: Vec<IngestItem> = (0..2)
        .map(|i| {
            IngestItem::at(
                user,
                format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
                1_000 + i * 60,
            )
        })
        .collect();
    let acks = svc.ingest_batch(&batch);
    assert!(
        acks.iter().all(|a| a.is_err()),
        "flush failure must reject every slot: {acks:?}"
    );
    let (crashed, _) = log.lock().recover().expect("recover");
    assert_eq!(crashed.len(), 0, "nothing rejected may be durable yet");

    // Device heals: the next batch is acknowledged and durable.
    plan.disarm_all();
    let batch2: Vec<IngestItem> = (0..2)
        .map(|i| {
            IngestItem::at(
                user,
                format!("SELECT salinity FROM WaterSalinity WHERE salinity > {i}"),
                2_000 + i * 60,
            )
        })
        .collect();
    let acks2 = svc.ingest_batch(&batch2);
    assert!(acks2.iter().all(|a| a.is_ok()), "{acks2:?}");
    let (recovered, report) = log.lock().recover().expect("recover");
    assert_eq!(report.frames_failed, 0);
    // The healed sync also lands the first batch's already-appended
    // frames: un-acked writes MAY become durable — they're simply never
    // promised. All four records exist both live and durably.
    assert_eq!(recovered.len(), 4);
    assert_eq!(svc.live_count(), 4);
}

/// **Pins the documented `ingest_batch` partial-failure semantics**: a
/// rate-shed slot gets `Overloaded`, is never executed and never becomes
/// durable; admitted slots in the *same* batch are acknowledged and
/// flushed as usual.
#[test]
fn overloaded_slot_is_never_durable_admitted_slots_flush() {
    let config = CqmsConfig {
        // A one-token bucket that effectively never refills: the second
        // item from the same user in one batch must be shed.
        user_rate_limit: 1e-9,
        user_rate_burst: 1.0,
        ..ram_config()
    };
    let (svc, _plan, log) = faulty_wal_service(config);
    let alice = svc.register_user("alice");
    let bob = svc.register_user("bob");

    let batch = vec![
        IngestItem::at(alice, "SELECT * FROM Lakes", 1_000),
        IngestItem::at(alice, "SELECT * FROM CityLocations", 1_060),
        IngestItem::at(bob, "SELECT salinity FROM WaterSalinity", 1_120),
    ];
    let acks = svc.ingest_batch(&batch);
    assert!(acks[0].is_ok(), "alice's first item is admitted: {acks:?}");
    match &acks[1] {
        Err(CqmsError::Overloaded { retry_after_ms }) => {
            assert!(*retry_after_ms > 0, "shed slots carry a retry hint")
        }
        other => panic!("second alice item must be rate-shed, got {other:?}"),
    }
    assert!(acks[2].is_ok(), "bob is a different bucket: {acks:?}");

    // The durability oracle: admitted slots are on disk, the shed slot
    // is nowhere — not merely unacknowledged but never executed.
    let (recovered, _) = log.lock().recover().expect("recover");
    let durable: Vec<&str> = recovered.iter().map(|r| r.raw_sql.as_str()).collect();
    assert!(durable.contains(&"SELECT * FROM Lakes"));
    assert!(durable.contains(&"SELECT salinity FROM WaterSalinity"));
    assert!(
        !durable.contains(&"SELECT * FROM CityLocations"),
        "an Overloaded slot must never reach the log"
    );
    assert_eq!(svc.live_count(), 2, "the shed slot never executed");
}

// ---------------------------------------------------------------------
// Admission: token-bucket starvation and depth-gate shedding
// ---------------------------------------------------------------------

/// A heavy user drains *their* bucket and starves; a neighbor sharing the
/// same service keeps being admitted.
#[test]
fn token_bucket_starves_heavy_user_not_neighbors() {
    let config = CqmsConfig {
        user_rate_limit: 0.5,
        user_rate_burst: 2.0,
        ..ram_config()
    };
    let svc = CqmsService::new(Cqms::new(engine(), config));
    let alice = svc.register_user("alice");
    let bob = svc.register_user("bob");

    assert!(svc.run_query(alice, "SELECT * FROM Lakes").is_ok());
    assert!(svc.run_query(alice, "SELECT * FROM CityLocations").is_ok());
    // Burst spent; at 0.5 tokens/s the third immediate request sheds.
    match svc.run_query(alice, "SELECT * FROM WaterTemp") {
        Err(CqmsError::Overloaded { retry_after_ms }) => {
            // One token at 0.5/s is ~2 s away; the hint must say so
            // (allowing for the sliver refilled since the burst).
            assert!(
                (1..=2_000).contains(&retry_after_ms),
                "retry hint {retry_after_ms} ms"
            );
        }
        other => panic!("heavy user must be rate-shed, got {other:?}"),
    }
    // The neighbor is untouched by alice's starvation.
    assert!(svc
        .run_query(bob, "SELECT salinity FROM WaterSalinity")
        .is_ok());
    let stats = svc.admission().stats();
    assert_eq!(stats.shed_rate_limited, 1);
    assert_eq!(stats.admitted, 3);
}

/// With the write lock held elsewhere and the gate at depth 2, exactly
/// two writers queue on the lock and every other writer is shed *while
/// the lock is still held* — the fast-fail the paper's interactive
/// clients need (a shed completion keystroke retries; it must not hang).
#[test]
fn depth_gate_sheds_fast_while_writer_holds_lock() {
    let config = CqmsConfig {
        ingest_queue_depth: 2,
        ..ram_config()
    };
    let svc = CqmsService::new(Cqms::new(engine(), config));
    let user = svc.register_user("alice");

    let shared = svc.shared();
    let guard = shared.write(); // the "stuck writer"
    let (tx, rx) = std::sync::mpsc::channel();
    for t in 0..8 {
        let svc = svc.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let res = svc.run_query(user, &format!("SELECT * FROM Lakes WHERE area > {t}"));
            let _ = tx.send(res);
        });
    }
    drop(tx);

    // All six sheds must happen while the guard is still held — that IS
    // the fast-fail property. Two threads sit admitted on the lock.
    let deadline = Instant::now() + Duration::from_secs(30);
    while svc.admission().stats().shed_overload < 6 {
        assert!(
            Instant::now() < deadline,
            "sheds never happened: {:?}",
            svc.admission().stats()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(guard); // unstick the two admitted writers

    let results: Vec<_> = rx.iter().collect();
    assert_eq!(results.len(), 8);
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let shed = results
        .iter()
        .filter(|r| matches!(r, Err(CqmsError::Overloaded { .. })))
        .count();
    assert_eq!((ok, shed), (2, 6), "depth 2 admits exactly two");
    let stats = svc.admission().stats();
    assert!(stats.max_in_flight <= 2, "gate depth held: {stats:?}");
    assert_eq!(stats.in_flight, 0, "permits returned on completion");
}

// ---------------------------------------------------------------------
// Deadline reads against an injected slow shard
// ---------------------------------------------------------------------

/// A 3-shard deployment with a deterministic workload spread over every
/// shard, plus an unsharded reference fed the identical sequence. Returns
/// `(sharded, unsharded, map global-id → unsharded-id, a query user)`.
fn sharded_fixture() -> (ShardedCqms, CqmsService, HashMap<QueryId, QueryId>, UserId) {
    let config = CqmsConfig {
        shards: 3,
        ..ram_config()
    };
    let s = ShardedCqms::new(engine, config);
    let reference = CqmsService::new(Cqms::new(engine(), ram_config()));

    let users: Vec<UserId> = (0..6)
        .map(|i| s.register_user(&format!("user{i}")))
        .collect();
    let ref_users: Vec<UserId> = (0..6)
        .map(|i| reference.register_user(&format!("user{i}")))
        .collect();
    let mut covered = [false; 3];
    for &u in &users {
        covered[s.shard_of(u)] = true;
    }
    assert!(covered.iter().all(|&c| c), "6 users cover all 3 shards");

    let sqls = [
        "SELECT lake, temp FROM WaterTemp WHERE temp < 5",
        "SELECT lake, temp FROM WaterTemp WHERE temp < 11",
        "SELECT lake, temp FROM WaterTemp WHERE temp < 17",
        "SELECT lake FROM WaterTemp WHERE month = 3",
        "SELECT salinity FROM WaterSalinity WHERE salinity > 2",
        "SELECT * FROM Lakes",
        "SELECT city, pop FROM CityLocations WHERE pop > 1000",
        "SELECT temp FROM WaterTemp WHERE month = 8",
        "SELECT lake, temp FROM WaterTemp WHERE temp < 23",
    ];
    let mut map = HashMap::new();
    for (i, sql) in sqls.iter().enumerate() {
        let (u, ru) = (users[i % 6], ref_users[i % 6]);
        let ts = 1_000 + i as u64 * 60;
        let gid = s.run_query_at(u, sql, ts).expect("sharded ingest").id;
        let rid = reference.run_query_at(ru, sql, ts).expect("ref ingest").id;
        map.insert(gid, rid);
    }
    for i in 0..3 {
        assert!(s.shards()[i].live_count() > 0, "shard {i} nonempty");
    }
    (s, reference, map, users[0])
}

/// **Acceptance test (deadline reads)**: with one shard injected to
/// answer slowly, a deadline kNN returns within the budget; the value is
/// an exact answer over the responsive shards — specifically, the full
/// merged top-k restricted to answering shards is a *prefix* of it, and
/// the full merge itself matches the unsharded oracle score-for-score.
#[test]
fn knn_deadline_partial_is_exact_prefix_of_full_answer() {
    let (s, reference, map, user) = sharded_fixture();
    let seed = "SELECT lake, temp FROM WaterTemp WHERE temp < 12";
    let k = 6;

    // The undeadlined sharded merge equals the unsharded oracle.
    let full = s
        .similar_queries(user, seed, k, DistanceKind::Features)
        .expect("full merge");
    let oracle = reference
        .similar_queries(UserId(0), seed, k, DistanceKind::Features)
        .expect("oracle");
    assert_eq!(full.len(), oracle.len());
    for (f, o) in full.iter().zip(&oracle) {
        assert_eq!(f.score.to_bits(), o.score.to_bits(), "score-exact merge");
        assert_eq!(map[&f.id], o.id, "same record at the same rank");
    }

    // Generous budget, no faults: bit-identical to the undeadlined call.
    let whole = s
        .similar_queries_deadline(
            user,
            seed,
            k,
            DistanceKind::Features,
            Duration::from_secs(10),
        )
        .expect("deadline read");
    assert!(!whole.partial);
    assert!(whole.lagging_shards.is_empty());
    assert_eq!(whole.value, full);

    // Inject: shard 2 answers reads 800 ms late; budget is 150 ms.
    let slow = 2usize;
    let plan = s.shards()[slow].fault_plan();
    plan.arm(
        faults::SHARD_READ,
        FaultAction::Delay(Duration::from_millis(800)),
        None,
    );
    let t0 = Instant::now();
    let partial = s
        .similar_queries_deadline(
            user,
            seed,
            k,
            DistanceKind::Features,
            Duration::from_millis(150),
        )
        .expect("deadline read");
    let elapsed = t0.elapsed();
    plan.disarm_all();

    assert!(
        elapsed < Duration::from_millis(650),
        "deadline bounded the call ({elapsed:?}); the slow shard sleeps 800 ms"
    );
    assert!(partial.partial);
    assert_eq!(partial.lagging_shards, vec![slow]);
    assert!(
        partial.value.iter().all(|h| s.locate(h.id).0 != slow),
        "no hit may come from the lagging shard"
    );
    // Exactness: the full top-k with the lagging shard's hits removed is
    // a prefix of the partial value (the partial then pulls up next-best
    // hits from the answering shards).
    let expect_prefix: Vec<_> = full.iter().filter(|h| s.locate(h.id).0 != slow).collect();
    assert!(partial.value.len() >= expect_prefix.len());
    for (p, e) in partial.value.iter().zip(&expect_prefix) {
        assert_eq!(p.id, e.id, "prefix property violated");
        assert_eq!(p.score.to_bits(), e.score.to_bits());
    }
}

/// Substring deadline reads: the partial value is *exactly* the full
/// answer minus the lagging shard's ids (no cross-shard scoring at all).
#[test]
fn substring_deadline_partial_equals_full_minus_lagging() {
    let (s, _reference, _map, user) = sharded_fixture();
    let full = s.search_substring(user, "WaterTemp");
    assert!(!full.is_empty());

    let slow = 1usize;
    let plan = s.shards()[slow].fault_plan();
    plan.arm(
        faults::SHARD_READ,
        FaultAction::Delay(Duration::from_millis(800)),
        None,
    );
    let t0 = Instant::now();
    let partial = s.search_substring_deadline(user, "WaterTemp", Duration::from_millis(150));
    let elapsed = t0.elapsed();
    plan.disarm_all();

    assert!(elapsed < Duration::from_millis(650), "bounded: {elapsed:?}");
    assert!(partial.partial);
    assert_eq!(partial.lagging_shards, vec![slow]);
    let expect: Vec<QueryId> = full
        .iter()
        .copied()
        .filter(|&id| s.locate(id).0 != slow)
        .collect();
    assert_eq!(partial.value, expect, "exact set minus the lagging shard");

    // Healed: the deadline call converges back to the full answer.
    let whole = s.search_substring_deadline(user, "WaterTemp", Duration::from_secs(10));
    assert!(!whole.partial);
    assert_eq!(whole.value, full);
}

/// Keyword deadline reads: with no lagging shard the two-pass protocol is
/// bit-identical to the undeadlined call; with a lagging shard the
/// answer covers only responsive shards (the documented weaker-IDF
/// guarantee) and still returns within budget.
#[test]
fn keyword_deadline_generous_budget_matches_undeadlined() {
    let (s, _reference, _map, user) = sharded_fixture();
    let full = s.search_keyword(user, "temp lake", 8);
    assert!(!full.is_empty());

    let whole = s.search_keyword_deadline(user, "temp lake", 8, Duration::from_secs(10));
    assert!(!whole.partial);
    assert!(whole.lagging_shards.is_empty());
    assert_eq!(whole.value, full, "two passes, same corpus, same bits");

    let slow = 0usize;
    let plan = s.shards()[slow].fault_plan();
    plan.arm(
        faults::SHARD_READ,
        FaultAction::Delay(Duration::from_millis(800)),
        None,
    );
    let t0 = Instant::now();
    let partial = s.search_keyword_deadline(user, "temp lake", 8, Duration::from_millis(150));
    let elapsed = t0.elapsed();
    plan.disarm_all();

    assert!(elapsed < Duration::from_millis(650), "bounded: {elapsed:?}");
    assert!(partial.partial);
    assert!(partial.lagging_shards.contains(&slow));
    assert!(
        partial.value.iter().all(|h| s.locate(h.id).0 != slow),
        "lagging shard contributes nothing"
    );
}

// ---------------------------------------------------------------------
// Self-healing: miner panics and transient write faults
// ---------------------------------------------------------------------

/// An injected panic inside a miner epoch must not kill the background
/// miner thread (or poison anything): the loop catches it, counts the
/// epoch as skipped, and later epochs run normally.
#[test]
fn miner_survives_injected_epoch_panic() {
    let svc = CqmsService::new(Cqms::new(engine(), ram_config()));
    let user = svc.register_user("alice");
    for i in 0..4u64 {
        svc.run_query_at(
            user,
            &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
            1_000 + i * 60,
        )
        .expect("ingest");
    }
    svc.fault_plan()
        .arm(faults::MINER_EPOCH, FaultAction::Panic, Some(1));
    assert!(svc.start_miner(Duration::from_millis(5)));
    let deadline = Instant::now() + Duration::from_secs(30);
    while svc.fault_plan().fired(faults::MINER_EPOCH) < 1 {
        assert!(Instant::now() < deadline, "panic failpoint never fired");
        std::thread::sleep(Duration::from_millis(2));
    }
    // The miner is still alive after the panic: stop joins the thread and
    // its graceful final epoch (now unarmed) completes.
    let epochs = svc
        .stop_miner()
        .expect("miner thread survived the injected panic");
    assert!(epochs >= 1, "post-panic epochs ran: {epochs}");
    // And the service still works end to end.
    assert!(svc.run_query(user, "SELECT * FROM Lakes").is_ok());
}

/// A transient WAL sync fault during the miner's post-epoch flush is
/// retried with backoff and never surfaces: two injected failures with a
/// three-attempt budget yield a clean report recording the two retries.
#[test]
fn miner_epoch_retries_transient_wal_sync_failure() {
    let (svc, plan, log) = faulty_wal_service(ram_config());
    let user = svc.register_user("alice");
    for i in 0..3u64 {
        svc.run_query_at(
            user,
            &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
            1_000 + i * 60,
        )
        .expect("ingest");
    }
    plan.arm(faults::WAL_SYNC, FaultAction::Fail, Some(2));
    let report = svc.run_miner_epoch();
    assert!(
        report.wal_flush_error.is_none(),
        "transient fault retried away: {:?}",
        report.wal_flush_error
    );
    assert_eq!(report.wal_flush_retries, 2, "both failures were absorbed");
    assert_eq!(plan.fired(faults::WAL_SYNC), 2);
    // Everything the epoch logged is durable after the healed flush.
    let (recovered, _) = log.lock().recover().expect("recover");
    assert_eq!(recovered.len(), 3);
}

/// A transient snapshot-write fault is likewise retried: `force_snapshot`
/// succeeds through one injected failure and the snapshot is durable.
#[test]
fn force_snapshot_retries_transient_write_failure() {
    let (sink, log) = MemSink::new();
    let plan = Arc::new(FaultPlan::new());
    let mut cqms = Cqms::new(engine(), ram_config());
    cqms.storage.attach_wal(WalWriter::new(
        Box::new(FaultySink::new(Box::new(sink), plan.clone())),
        1,
    ));
    let user = cqms.register_user("alice");
    for i in 0..3u64 {
        cqms.run_query_at(
            user,
            &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
            1_000 + i * 60,
        )
        .expect("ingest");
    }
    cqms.wal_flush().expect("flush");

    plan.arm(faults::SNAPSHOT_WRITE, FaultAction::Fail, Some(1));
    assert!(cqms
        .force_snapshot()
        .expect("snapshot retried through fault"));
    assert_eq!(plan.fired(faults::SNAPSHOT_WRITE), 1);
    // The snapshot is the durable state of record now.
    let (recovered, report) = log.lock().recover().expect("recover");
    assert!(report.snapshot_lsn > 0, "recovery starts from the snapshot");
    assert_eq!(recovered.len(), 3);
}

// ---------------------------------------------------------------------
// Degraded open: one corrupt shard directory
// ---------------------------------------------------------------------

/// **Pins the degraded-open contract**: a corrupt shard directory fails
/// the whole open with a per-shard error by default; with
/// `open_degraded` the healthy shards come up, the corrupt shard is
/// reported, reads serve the surviving data, and writes routed to the
/// dead shard bounce with `ShardUnavailable`.
#[test]
fn degraded_open_isolates_corrupt_shard() {
    let dir = temp_dir("degraded");
    let _ = std::fs::remove_dir_all(&dir);
    let config = CqmsConfig {
        shards: 2,
        ..CqmsConfig::default()
    };
    // Seed a healthy 2-shard deployment with a record on each shard.
    let mut user_on: Vec<Option<(String, UserId)>> = vec![None, None];
    {
        let s = ShardedCqms::open(engine, config.clone(), &dir).expect("seed open");
        for i in 0..6 {
            let name = format!("user{i}");
            let u = s.register_user(&name);
            let shard = s.shard_of(u);
            if user_on[shard].is_none() {
                user_on[shard] = Some((name, u));
            }
        }
        let (_, u0) = user_on[0].clone().expect("a user on shard 0");
        let (_, u1) = user_on[1].clone().expect("a user on shard 1");
        s.run_query(u0, "SELECT * FROM Lakes")
            .expect("shard-0 write");
        s.run_query(u1, "SELECT salinity FROM WaterSalinity")
            .expect("shard-1 write");
        s.shutdown();
    }

    // Corrupt shard 1: its WAL directory becomes a regular file.
    let shard1 = dir.join("shard-1");
    std::fs::remove_dir_all(&shard1).expect("remove shard dir");
    std::fs::write(&shard1, b"not a directory").expect("plant corruption");

    // Default: the open fails loudly, naming the shard.
    match ShardedCqms::open(engine, config.clone(), &dir) {
        Err(CqmsError::ShardOpen { shard, .. }) => assert_eq!(shard, 1),
        Err(other) => panic!("corrupt shard must name itself, got {other:?}"),
        Ok(_) => panic!("corrupt shard must fail the open by default"),
    }

    // Opted in: healthy shards come up read-serving; the corrupt shard is
    // reported and write-fenced.
    let degraded_config = CqmsConfig {
        open_degraded: true,
        ..config
    };
    let s = ShardedCqms::open(engine, degraded_config, &dir).expect("degraded open");
    assert_eq!(s.degraded_shards(), vec![1]);
    assert!(s.shard_recovery()[0].is_ok());
    assert!(s.shard_recovery()[1].is_err());
    assert_eq!(s.live_count(), 1, "shard 0's record survived");

    // Same registration order ⇒ same user ids ⇒ same routing.
    let mut u0 = None;
    let mut u1 = None;
    for i in 0..6 {
        let u = s.register_user(&format!("user{i}"));
        match s.shard_of(u) {
            0 if u0.is_none() => u0 = Some(u),
            1 if u1.is_none() => u1 = Some(u),
            _ => {}
        }
    }
    let (u0, u1) = (u0.unwrap(), u1.unwrap());
    // Reads serve the surviving shard's data.
    assert_eq!(s.search_substring(u0, "Lakes").len(), 1);
    // Writes: healthy shard accepts, degraded shard bounces.
    assert!(s.run_query(u0, "SELECT * FROM CityLocations").is_ok());
    match s.run_query(u1, "SELECT * FROM Lakes") {
        Err(CqmsError::ShardUnavailable { shard }) => assert_eq!(shard, 1),
        other => panic!("degraded shard must fence writes, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Override storm: bulk repair forces a publish
// ---------------------------------------------------------------------

/// A reindex storm (bulk `REINDEX` repair, §2.4) may not let the override
/// log grow without bound: at the configured threshold the storm pays for
/// an inline rebuild + publish, so outstanding overrides stay below the
/// bound no matter how many repairs arrive.
#[test]
fn override_storm_forces_inline_publish() {
    let config = CqmsConfig {
        override_publish_threshold: 8,
        ..ram_config()
    };
    let mut cqms = Cqms::new(engine(), config);
    let user = cqms.register_user("alice");
    for i in 0..20u64 {
        cqms.run_query_at(
            user,
            &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
            1_000 + i * 60,
        )
        .expect("ingest");
    }
    let gen0 = cqms.storage.index_generation();
    for i in 0..20u64 {
        cqms.storage.reindex(QueryId(i)).expect("repair");
        assert!(
            cqms.storage.indexes().override_count() < 8,
            "override log bounded at the threshold (repair {i})"
        );
    }
    // 20 repairs at threshold 8 ⇒ two forced publishes, 4 left over.
    assert_eq!(cqms.storage.indexes().override_count(), 4);
    assert!(
        cqms.storage.index_generation() >= gen0 + 2,
        "each forced publish advanced the generation"
    );
}

// ---------------------------------------------------------------------
// Shard repair supervisor (PR 9)
// ---------------------------------------------------------------------

/// Stash a shard directory behind `.bak` and plant a squatter file in its
/// place — an unrepairable-until-fixed disk fault that keeps the data.
fn stash_shard_dir(dir: &std::path::Path, shard: usize) {
    let shard_dir = dir.join(format!("shard-{shard}"));
    let bak = dir.join(format!("shard-{shard}.bak"));
    std::fs::rename(&shard_dir, &bak).expect("stash shard dir");
    std::fs::write(&shard_dir, b"disk fault").expect("plant squatter");
}

/// Undo [`stash_shard_dir`]: the original directory returns intact.
fn restore_shard_dir(dir: &std::path::Path, shard: usize) {
    let shard_dir = dir.join(format!("shard-{shard}"));
    let bak = dir.join(format!("shard-{shard}.bak"));
    std::fs::remove_file(&shard_dir).expect("evict squatter");
    std::fs::rename(&bak, &shard_dir).expect("restore shard dir");
}

/// Seed a 2-shard durable deployment with one record on each shard and
/// return a user routed to each.
fn seed_two_shards(dir: &std::path::Path, config: &CqmsConfig) -> (String, String) {
    let s = ShardedCqms::open(engine, config.clone(), dir).expect("seed open");
    let mut names: Vec<Option<String>> = vec![None, None];
    for i in 0..6 {
        let name = format!("user{i}");
        let u = s.register_user(&name);
        let shard = s.shard_of(u);
        if names[shard].is_none() {
            s.run_query(u, "SELECT * FROM Lakes").expect("seed write");
            names[shard] = Some(name);
        }
    }
    s.shutdown();
    (names[0].clone().unwrap(), names[1].clone().unwrap())
}

/// Re-register the seed users (same order ⇒ same ids) and return the one
/// routed to `shard`.
fn user_on_shard(s: &ShardedCqms, shard: usize) -> UserId {
    for i in 0..6 {
        let u = s.register_user(&format!("user{i}"));
        if s.shard_of(u) == shard {
            return u;
        }
    }
    panic!("no user routed to shard {shard}");
}

/// **Pins the tentpole contract**: the background supervisor re-attempts
/// a degraded shard on its own clock and, once the directory heals,
/// promotes it back to serving — writes un-fenced, data recovered —
/// while the healthy shard never stops serving.
#[test]
fn background_supervisor_promotes_healed_shard() {
    let dir = temp_dir("repair-auto");
    let _ = std::fs::remove_dir_all(&dir);
    let config = CqmsConfig {
        shards: 2,
        open_degraded: true,
        repair_interval_ms: 20,
        ..CqmsConfig::default()
    };
    seed_two_shards(&dir, &config);
    stash_shard_dir(&dir, 1);

    let s = ShardedCqms::open(engine, config, &dir).expect("degraded open");
    assert_eq!(s.degraded_shards(), vec![1]);
    assert!(
        s.repair_running(),
        "a degraded durable open auto-starts the supervisor"
    );
    // The healthy shard serves while the supervisor spins on the fault.
    let u0 = user_on_shard(&s, 0);
    assert!(s.run_query(u0, "SELECT * FROM CityLocations").is_ok());

    restore_shard_dir(&dir, 1);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !s.degraded_shards().is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        s.degraded_shards(),
        Vec::<usize>::new(),
        "supervisor promoted"
    );
    assert!(
        s.shard_recovery()[1].is_ok(),
        "latest outcome is the recovery"
    );
    assert!(
        s.health()[1].repair_attempts >= 1,
        "attempts were recorded along the way"
    );
    // Un-fenced: the healed shard accepts writes again, and its seed
    // record survived the round trip.
    let u1 = user_on_shard(&s, 1);
    assert!(s.run_query(u1, "SELECT * FROM WaterSalinity").is_ok());
    assert!(
        s.search_substring(u1, "Lakes").len() >= 2,
        "both seed records"
    );
    s.shutdown();
    assert!(!s.repair_running(), "shutdown stops the supervisor");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `repair.attempt` failpoint fails attempts before any I/O: with a
/// budget of 2 on the shard's own plan, two manual epochs burn the budget
/// (each recording its error), and the third promotes.
#[test]
fn repair_attempt_failpoint_defers_promotion() {
    let dir = temp_dir("repair-failpoint");
    let _ = std::fs::remove_dir_all(&dir);
    let config = CqmsConfig {
        shards: 2,
        open_degraded: true,
        repair_interval_ms: 0, // manual epochs only
        ..CqmsConfig::default()
    };
    seed_two_shards(&dir, &config);
    stash_shard_dir(&dir, 1);
    let s = ShardedCqms::open(engine, config, &dir).expect("degraded open");
    assert!(!s.repair_running(), "interval 0 means manual mode");
    restore_shard_dir(&dir, 1); // the directory is fine; only the failpoint bites
    s.shards()[1]
        .fault_plan()
        .arm(faults::REPAIR_ATTEMPT, FaultAction::Fail, Some(2));

    assert_eq!(s.run_repair_epoch(), Vec::<usize>::new());
    let err = s.shard_recovery()[1].clone().unwrap_err();
    assert!(
        err.to_string().contains("repair attempt 1"),
        "failures are recorded per attempt: {err}"
    );
    assert_eq!(s.run_repair_epoch(), Vec::<usize>::new());
    assert_eq!(s.run_repair_epoch(), vec![1], "third attempt goes through");
    assert_eq!(s.health()[1].repair_attempts, 3);
    assert!(s.shard_recovery()[1].is_ok());
    s.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `repair_max_attempts` bounds the retry budget: once exhausted the
/// shard stays fenced — even after the directory heals — and reports
/// `Degraded` until a restart.
#[test]
fn repair_budget_exhaustion_keeps_shard_fenced() {
    use cqms_core::shard::ShardState;

    let dir = temp_dir("repair-budget");
    let _ = std::fs::remove_dir_all(&dir);
    let config = CqmsConfig {
        shards: 2,
        open_degraded: true,
        repair_interval_ms: 0,
        repair_max_attempts: 2,
        ..CqmsConfig::default()
    };
    seed_two_shards(&dir, &config);
    stash_shard_dir(&dir, 1);
    let s = ShardedCqms::open(engine, config, &dir).expect("degraded open");

    // Two attempts against the still-broken directory burn the budget.
    assert_eq!(s.run_repair_epoch(), Vec::<usize>::new());
    assert_eq!(s.run_repair_epoch(), Vec::<usize>::new());
    assert_eq!(s.health()[1].repair_attempts, 2);

    // Healing the disk now is too late for this process lifetime.
    restore_shard_dir(&dir, 1);
    assert_eq!(s.run_repair_epoch(), Vec::<usize>::new(), "budget is spent");
    assert_eq!(s.degraded_shards(), vec![1]);
    assert_eq!(s.health()[1].state, ShardState::Degraded);
    let u1 = user_on_shard(&s, 1);
    match s.run_query(u1, "SELECT * FROM Lakes") {
        Err(CqmsError::ShardUnavailable { shard }) => assert_eq!(shard, 1),
        other => panic!("exhausted shard must stay fenced, got {other:?}"),
    }
    s.shutdown();

    // A restart gets a fresh budget: the healed directory comes back.
    let config = CqmsConfig {
        shards: 2,
        open_degraded: true,
        repair_interval_ms: 0,
        repair_max_attempts: 2,
        ..CqmsConfig::default()
    };
    let s = ShardedCqms::open(engine, config, &dir).expect("healed open");
    assert_eq!(s.degraded_shards(), Vec::<usize>::new());
    s.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `wal.quarantine` failpoint fails the quarantine move itself: an
/// open that *needs* to quarantine propagates the error instead of
/// silently dropping evidence; once the failpoint clears, the open
/// succeeds and the loss is reported.
#[test]
fn wal_quarantine_failpoint_fails_open() {
    let dir = temp_dir("repair-quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut cqms = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
        let user = cqms.register_user("alice");
        for i in 0..5u64 {
            cqms.run_query_at(
                user,
                &format!("SELECT * FROM WaterTemp WHERE temp < {i}"),
                1_000 + i * 60,
            )
            .unwrap();
        }
        cqms.wal_flush().unwrap();
    }
    // Wound a mid-log frame so the next open must quarantine the segment.
    let (_, seg) = cqms_core::wal::list_segments(&dir).unwrap().remove(0);
    let mut bytes = std::fs::read(&seg).unwrap();
    // Find the second frame via the [len][crc][body] framing.
    let len0 = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let off = 8 + len0;
    let len1 = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
    bytes[off + 8 + len1 / 2] ^= 0xFF;
    std::fs::write(&seg, &bytes).unwrap();

    faults::global_plan().arm(faults::WAL_QUARANTINE, FaultAction::Fail, Some(1));
    let err = match Cqms::open(engine(), CqmsConfig::default(), &dir) {
        Err(e) => e,
        Ok(_) => panic!("a failed quarantine move must fail the open"),
    };
    assert!(
        err.to_string().contains("injected"),
        "the failpoint is the cause: {err}"
    );
    faults::global_plan().disarm(faults::WAL_QUARANTINE);

    let recovered = Cqms::open(engine(), CqmsConfig::default(), &dir).unwrap();
    let report = recovered.recovery().unwrap();
    assert!(report.lossy(), "the mid-log loss is reported");
    assert!(
        dir.join("quarantine").join("MANIFEST.txt").is_file(),
        "evidence lands once the device cooperates"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
