//! PR 10 acceptance: lock-free [`ReadSnapshot`] correctness.
//!
//! * `snapshot_reads_match_live_state` — a freshly cloned snapshot's
//!   keyword / substring / kNN / completion / recommendation answers are
//!   bit-identical to the quiesced store's lock-retained oracle at every
//!   checkpoint of a generated workload, and a snapshot *held across*
//!   further churn (ingests, tombstones, ACL flips, index rebuilds, miner
//!   epochs) keeps returning exactly its capture-time answers.
//! * `pinned_readers_survive_three_generations` — reader threads pinned to
//!   one old snapshot keep getting byte-stable answers while the write
//!   path publishes three index-rebuild generations under them.
//! * `publish_points_bump_one_epoch` — every write-path publish point
//!   (write, rebuild publish, miner epoch, `try_replace` promotion) bumps
//!   the snapshot epoch so readers can never observe mixed
//!   promoted-index/stale-popularity state.

use cqms_core::metaquery::ScoredHit;
use cqms_core::model::{GroupId, QueryId, UserId, Visibility};
use cqms_core::similarity::DistanceKind;
use cqms_core::{Cqms, CqmsConfig, CqmsService};
use proptest::prelude::*;
use relstore::Engine;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use workload::Domain;

const USERS: u32 = 3;
const KEYWORD_PROBE: &str = "watertemp temp salinity lakes month";
const KNN_PROBE: &str = "SELECT * FROM WaterTemp WHERE temp < 18";
const COMPLETE_PROBE: &str = "SELECT * FROM WaterTemp, ";
const SEED_SQL: &str = "SELECT * FROM WaterTemp WHERE temp < 18";

fn engine() -> Engine {
    let mut e = Engine::new();
    Domain::Lakes.setup(&mut e, 30, 3);
    e
}

fn service() -> (CqmsService, Vec<UserId>) {
    let config = CqmsConfig {
        wal_fsync: false,
        ..CqmsConfig::default()
    };
    let svc = CqmsService::new(Cqms::new(engine(), config));
    let users = (0..USERS)
        .map(|i| svc.register_user(&format!("user-{i}")))
        .collect();
    (svc, users)
}

/// One step of the generated workload.
#[derive(Debug, Clone)]
enum Op {
    Run { user: u32, sql: String },
    Delete { nth: usize },
    Hide { nth: usize, vis: Visibility },
    Rebuild,
    Maintain,
    MinerEpoch,
}

fn sql_strategy() -> impl Strategy<Value = String> {
    let table = prop_oneof![
        Just("WaterTemp"),
        Just("WaterSalinity"),
        Just("CityLocations"),
        Just("Lakes"),
    ];
    let col = prop_oneof![
        Just("temp"),
        Just("salinity"),
        Just("pop"),
        Just("area"),
        Just("month"),
    ];
    let op = prop_oneof![Just("<"), Just(">"), Just("="), Just("<=")];
    (table, proptest::option::of((col, op, -50i64..50))).prop_map(|(t, pred)| {
        let mut sql = format!("SELECT * FROM {t}");
        if let Some((c, o, k)) = pred {
            sql.push_str(&format!(" WHERE {c} {o} {k}"));
        }
        sql
    })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..USERS, sql_strategy()).prop_map(|(user, sql)| Op::Run { user, sql }),
        2 => (0usize..64).prop_map(|nth| Op::Delete { nth }),
        2 => (
            0usize..64,
            prop_oneof![
                Just(Visibility::Public),
                Just(Visibility::Private),
                (0u32..2).prop_map(|g| Visibility::Group(GroupId(g))),
            ]
        )
            .prop_map(|(nth, vis)| Op::Hide { nth, vis }),
        1 => Just(Op::Rebuild),
        1 => Just(Op::Maintain),
        1 => Just(Op::MinerEpoch),
    ]
}

fn apply(
    svc: &CqmsService,
    users: &[UserId],
    issued: &mut Vec<(UserId, QueryId)>,
    op: &Op,
    ts: u64,
) {
    match op {
        Op::Run { user, sql } => {
            let out = svc
                .run_query_at(users[*user as usize], sql, ts)
                .expect("profiling never hard-fails");
            issued.push((users[*user as usize], out.id));
        }
        Op::Delete { nth } if !issued.is_empty() => {
            let (owner, id) = issued[nth % issued.len()];
            let _ = svc.delete_query(owner, id);
        }
        Op::Hide { nth, vis } if !issued.is_empty() => {
            let (owner, id) = issued[nth % issued.len()];
            let _ = svc.set_visibility(owner, id, *vis);
        }
        Op::Rebuild => {
            svc.write(|c| c.storage.schedule_index_rebuild());
            svc.rebuild_indexes();
        }
        Op::Maintain => {
            svc.run_maintenance().expect("maintenance");
        }
        Op::MinerEpoch => {
            let report = svc.run_miner_epoch();
            assert!(report.wal_flush_error.is_none());
        }
        _ => {}
    }
}

/// Everything one snapshot answers for one viewer, byte-comparable.
#[derive(Debug, Clone, PartialEq)]
struct Answers {
    live: usize,
    now: u64,
    generation: u64,
    keyword: Vec<(QueryId, u64)>,
    substring: Vec<QueryId>,
    knn: Vec<(QueryId, u64)>,
    complete: Vec<(String, u64, String)>,
    recommend: Vec<(u8, String, String, String)>,
}

fn bits(hits: Vec<ScoredHit>) -> Vec<(QueryId, u64)> {
    hits.into_iter()
        .map(|h| (h.id, h.score.to_bits()))
        .collect()
}

fn snapshot_answers(snap: &cqms_core::ReadSnapshot, viewer: UserId) -> Answers {
    Answers {
        live: snap.live_count(),
        now: snap.now(),
        generation: snap.index_generation(),
        keyword: bits(snap.search_keyword(viewer, KEYWORD_PROBE, 64)),
        substring: snap.search_substring(viewer, "WaterTemp"),
        knn: bits(
            snap.similar_queries(viewer, KNN_PROBE, 64, DistanceKind::Combined)
                .expect("probe parses"),
        ),
        complete: snap
            .complete(viewer, COMPLETE_PROBE, 8)
            .into_iter()
            .map(|s| (s.text, s.score.to_bits(), s.why))
            .collect(),
        recommend: snap
            .recommend(viewer, SEED_SQL, 5)
            .expect("seed parses")
            .into_iter()
            .map(|r| (r.score_pct, r.sql, r.diff, r.annotation))
            .collect(),
    }
}

/// The same answers computed under the service's live lock — the oracle a
/// fresh snapshot must match exactly while the store is quiesced.
fn live_answers(svc: &CqmsService, viewer: UserId) -> Answers {
    svc.read(|c| Answers {
        live: c.storage.live_count(),
        now: c.now(),
        generation: c.storage.index_generation(),
        keyword: bits(c.search_keyword(viewer, KEYWORD_PROBE, 64)),
        substring: c.search_substring(viewer, "WaterTemp"),
        knn: bits(
            c.similar_queries(viewer, KNN_PROBE, 64, DistanceKind::Combined)
                .expect("probe parses"),
        ),
        complete: c
            .complete(viewer, COMPLETE_PROBE, 8)
            .into_iter()
            .map(|s| (s.text, s.score.to_bits(), s.why))
            .collect(),
        recommend: c
            .recommend(viewer, SEED_SQL, 5)
            .expect("seed parses")
            .into_iter()
            .map(|r| (r.score_pct, r.sql, r.diff, r.annotation))
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: a just-cloned snapshot equals the quiesced
    /// live store bit for bit, and a snapshot held across arbitrary
    /// further churn — tombstones, ACL flips, rebuild races, miner
    /// epochs — keeps answering exactly as it did at capture.
    #[test]
    fn snapshot_reads_match_live_state(
        before in proptest::collection::vec(op_strategy(), 1..24),
        after in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        let (svc, users) = service();
        let mut issued = Vec::new();
        for (i, op) in before.iter().enumerate() {
            apply(&svc, &users, &mut issued, op, 1_000 + i as u64 * 60);
        }

        // Freshly published snapshot == quiesced live oracle, per viewer.
        let snap = svc.snapshot();
        let mut pinned = Vec::new();
        for &viewer in &users {
            let got = snapshot_answers(&snap, viewer);
            let want = live_answers(&svc, viewer);
            prop_assert_eq!(&got, &want, "fresh snapshot diverged for viewer {}", viewer);
            pinned.push(got);
        }
        let epoch0 = snap.epoch();

        // Churn underneath the held snapshot.
        for (i, op) in after.iter().enumerate() {
            apply(&svc, &users, &mut issued, op, 100_000 + i as u64 * 60);
        }

        // The held snapshot is frozen at capture time...
        for (&viewer, want) in users.iter().zip(&pinned) {
            let again = snapshot_answers(&snap, viewer);
            prop_assert_eq!(&again, want, "held snapshot drifted for viewer {}", viewer);
        }
        prop_assert_eq!(snap.epoch(), epoch0);

        // ...while a re-clone sees the new state exactly.
        let fresh = svc.snapshot();
        prop_assert!(fresh.epoch() > epoch0, "churn published no snapshot");
        for &viewer in &users {
            prop_assert_eq!(
                snapshot_answers(&fresh, viewer),
                live_answers(&svc, viewer),
                "re-cloned snapshot diverged for viewer {}", viewer
            );
        }
    }
}

/// Readers pinned to one old snapshot stay byte-stable while the write
/// path publishes three index-rebuild generations (plus writer churn and
/// miner epochs) underneath them.
#[test]
fn pinned_readers_survive_three_generations() {
    let (svc, users) = service();
    for i in 0..40u64 {
        svc.run_query_at(
            users[(i % USERS as u64) as usize],
            &format!("SELECT * FROM WaterTemp WHERE temp < {}", i % 25),
            1_000 + i * 60,
        )
        .expect("seed write");
    }

    let pinned = svc.snapshot();
    let baseline: Vec<Answers> = users
        .iter()
        .map(|&u| snapshot_answers(&pinned, u))
        .collect();
    let gen0 = pinned.index_generation();
    let epoch0 = pinned.epoch();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = users
        .iter()
        .enumerate()
        .map(|(r, &viewer)| {
            let snap = Arc::clone(&pinned);
            let want = baseline[r].clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut iterations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    assert_eq!(
                        snapshot_answers(&snap, viewer),
                        want,
                        "pinned reader {r} saw the snapshot change"
                    );
                    iterations += 1;
                }
                iterations
            })
        })
        .collect();

    // Three full generations under the pinned readers.
    let mut last_epoch = epoch0;
    for gen in 0..3u64 {
        for i in 0..20u64 {
            let ts = 200_000 + gen * 10_000 + i * 60;
            svc.run_query_at(
                users[(i % USERS as u64) as usize],
                &format!("SELECT * FROM WaterSalinity WHERE salinity < {}", i % 25),
                ts,
            )
            .expect("churn write");
        }
        svc.write(|c| c.storage.schedule_index_rebuild());
        assert!(svc.rebuild_indexes(), "generation {gen} did not publish");
        svc.run_miner_epoch();
        let now = svc.snapshot();
        assert!(
            now.epoch() > last_epoch,
            "generation {gen} published no snapshot epoch"
        );
        assert_eq!(now.index_generation(), gen0 + gen + 1);
        last_epoch = now.epoch();
    }

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let iterations = r.join().expect("pinned reader panicked");
        assert!(iterations > 0, "reader never completed a pass");
    }

    // The pinned snapshot still serves generation gen0, untouched.
    assert_eq!(pinned.index_generation(), gen0);
    assert_eq!(pinned.epoch(), epoch0);
    for (r, &viewer) in users.iter().enumerate() {
        assert_eq!(
            snapshot_answers(&pinned, viewer),
            baseline[r],
            "pinned snapshot drifted after the stress"
        );
    }
}

/// Every write-path publish point bumps exactly one snapshot epoch, and
/// `try_replace` swaps the whole view in one bump — a reader either keeps
/// the full pre-promotion snapshot or clones the full post-promotion one,
/// never a mix of the two.
#[test]
fn publish_points_bump_one_epoch() {
    let (svc, users) = service();
    let u = users[0];

    let e0 = svc.snapshot().epoch();
    svc.run_query_at(u, "SELECT * FROM WaterTemp WHERE temp < 10", 1_000)
        .expect("write");
    let e1 = svc.snapshot().epoch();
    assert_eq!(e1, e0 + 1, "one write, one epoch");

    svc.write(|c| c.storage.schedule_index_rebuild());
    let e2 = svc.snapshot().epoch();
    svc.rebuild_indexes();
    let e3 = svc.snapshot().epoch();
    assert_eq!(e3, e2 + 1, "one rebuild publish, one epoch");

    svc.run_miner_epoch();
    let e4 = svc.snapshot().epoch();
    assert_eq!(e4, e3 + 1, "one miner epoch, one epoch");

    // try_replace: the old snapshot stays coherent, the new slot serves
    // the replacement's indexes AND popularity in the same epoch.
    let old = svc.snapshot();
    let old_live = old.live_count();
    let replacement = {
        let config = CqmsConfig {
            wal_fsync: false,
            ..CqmsConfig::default()
        };
        let mut c = Cqms::new(engine(), config);
        let ru = c.register_user("user-0");
        for i in 0..5u64 {
            c.run_query_at(ru, "SELECT * FROM Lakes", 5_000 + i * 60)
                .expect("replacement write");
        }
        c
    };
    let replaced = svc.try_replace(replacement);
    assert!(replaced.is_ok(), "uncontended replace");
    let promoted = svc.snapshot();
    assert_eq!(promoted.epoch(), e4 + 1, "one promotion, one epoch");
    assert_eq!(
        promoted.live_count(),
        5,
        "promoted view serves the replacement"
    );
    assert!(
        !promoted.template_histogram().is_empty(),
        "promoted popularity tables came from the replacement, not the placeholder"
    );
    assert_eq!(
        old.live_count(),
        old_live,
        "pinned pre-promotion view intact"
    );
}

/// The service's lock-retained reads (live-engine dependencies) still
/// work after snapshots took over the hot path, and a snapshot taken
/// mid-flight ignores them entirely.
#[test]
fn lock_retained_reads_still_serve() {
    let (svc, users) = service();
    let u = users[0];
    svc.run_query_at(u, "SELECT * FROM WaterTemp WHERE temp < 10", 1_000)
        .expect("write");
    let r = svc
        .search_feature_sql(u, "SELECT qid FROM DataSources WHERE relName = 'watertemp'")
        .expect("feature SQL");
    assert_eq!(r.rows.len(), 1);
    assert!(!svc
        .check_identifiers("SELECT temp FROM WatrTemp")
        .is_empty());
}
