//! Property-based equivalence of the sharded deployment against the
//! unsharded path (PR 7 acceptance): for generator-driven workloads of
//! ingests, tombstones, visibility flips, maintenance repairs and index
//! rebuilds, every cross-shard merged read — keyword TF-IDF, kNN,
//! substring — must return the *same results with the same scores* as one
//! unsharded [`CqmsService`] fed the identical trace.
//!
//! Global ids intentionally differ (the sharded deployment stripes them),
//! so equality is checked on what ids denote: the multiset of
//! `(score bits, issuing user, raw SQL)` per viewer. Scores must match
//! **bit for bit** — keyword scoring uses summed global corpus statistics
//! and kNN distances depend only on record content, so there is no
//! tolerance to hide behind.

use cqms_core::model::{GroupId, QueryId, UserId, Visibility};
use cqms_core::shard::{ShardState, ShardedCqms};
use cqms_core::similarity::DistanceKind;
use cqms_core::{Cqms, CqmsConfig, CqmsService};
use proptest::prelude::*;
use relstore::Engine;
use std::sync::atomic::{AtomicUsize, Ordering};
use workload::Domain;

const USERS: u32 = 4;

fn engine() -> Engine {
    let mut e = Engine::new();
    Domain::Lakes.setup(&mut e, 30, 3);
    e
}

fn config(shards: usize) -> CqmsConfig {
    CqmsConfig {
        shards,
        wal_fsync: false,
        // Quality's efficiency term ranks *measured* execution latency —
        // the same issued query times differently run to run, so any
        // blend of it can never be bit-compared across two deployments.
        // Zero its rank weight (folding it into recency) to pin the
        // deterministic terms: similarity, global popularity, recency.
        rank_recency: CqmsConfig::default().rank_recency + CqmsConfig::default().rank_quality,
        rank_quality: 0.0,
        ..CqmsConfig::default()
    }
}

/// One step of the generated workload, applied identically to both
/// deployments. Indices address the n-th *issued* query (mod count), so
/// the same logical record is targeted on both sides even though their id
/// spaces differ.
#[derive(Debug, Clone)]
enum Op {
    Run { user: u32, sql: String },
    Delete { nth: usize },
    Hide { nth: usize, vis: Visibility },
    Rebuild,
    Maintain,
}

fn sql_strategy() -> impl Strategy<Value = String> {
    let table = prop_oneof![
        Just("WaterTemp"),
        Just("WaterSalinity"),
        Just("CityLocations"),
        Just("Lakes"),
    ];
    let col = prop_oneof![
        Just("temp"),
        Just("salinity"),
        Just("pop"),
        Just("area"),
        Just("month"),
    ];
    let op = prop_oneof![Just("<"), Just(">"), Just("="), Just("<=")];
    (table, proptest::option::of((col, op, -50i64..50))).prop_map(|(t, pred)| {
        let mut sql = format!("SELECT * FROM {t}");
        if let Some((c, o, k)) = pred {
            sql.push_str(&format!(" WHERE {c} {o} {k}"));
        }
        sql
    })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..USERS, sql_strategy()).prop_map(|(user, sql)| Op::Run { user, sql }),
        2 => (0usize..64).prop_map(|nth| Op::Delete { nth }),
        2 => (
            0usize..64,
            prop_oneof![
                Just(Visibility::Public),
                Just(Visibility::Private),
                (0u32..2).prop_map(|g| Visibility::Group(GroupId(g))),
            ]
        )
            .prop_map(|(nth, vis)| Op::Hide { nth, vis }),
        1 => Just(Op::Rebuild),
        1 => Just(Op::Maintain),
    ]
}

/// Owner + id of every issued query, in issue order — the shared index
/// space `Delete`/`Hide` address into.
type Issued = Vec<(UserId, QueryId)>;

fn apply_unsharded(svc: &CqmsService, users: &[UserId], issued: &mut Issued, op: &Op, ts: u64) {
    match op {
        Op::Run { user, sql } => {
            let out = svc
                .run_query_at(users[*user as usize], sql, ts)
                .expect("profiling never hard-fails");
            issued.push((users[*user as usize], out.id));
        }
        Op::Delete { nth } if !issued.is_empty() => {
            let (owner, id) = issued[nth % issued.len()];
            let _ = svc.delete_query(owner, id);
        }
        Op::Hide { nth, vis } if !issued.is_empty() => {
            let (owner, id) = issued[nth % issued.len()];
            let _ = svc.set_visibility(owner, id, *vis);
        }
        Op::Rebuild => {
            svc.write(|c| c.storage.schedule_index_rebuild());
            svc.rebuild_indexes();
        }
        Op::Maintain => {
            svc.run_maintenance().expect("maintenance");
        }
        _ => {}
    }
}

fn apply_sharded(s: &ShardedCqms, users: &[UserId], issued: &mut Issued, op: &Op, ts: u64) {
    match op {
        Op::Run { user, sql } => {
            let out = s
                .run_query_at(users[*user as usize], sql, ts)
                .expect("profiling never hard-fails");
            issued.push((users[*user as usize], out.id));
        }
        Op::Delete { nth } if !issued.is_empty() => {
            let (owner, id) = issued[nth % issued.len()];
            let _ = s.delete_query(owner, id);
        }
        Op::Hide { nth, vis } if !issued.is_empty() => {
            let (owner, id) = issued[nth % issued.len()];
            let _ = s.set_visibility(owner, id, *vis);
        }
        Op::Rebuild => {
            for shard in s.shards() {
                shard.write(|c| c.storage.schedule_index_rebuild());
            }
            s.rebuild_indexes();
        }
        Op::Maintain => {
            s.run_maintenance().expect("maintenance");
        }
        _ => {}
    }
}

/// What a hit *denotes*, independent of either deployment's id space.
/// Scores are compared as raw bits: merged sharded scoring must be
/// exactly the unsharded computation, not merely close.
type Denoted = Vec<(u64, u32, String)>;

fn denote_unsharded(svc: &CqmsService, hits: &[(QueryId, f64)]) -> Denoted {
    let mut out: Denoted = hits
        .iter()
        .map(|(id, score)| {
            svc.read(|c| {
                let r = c.storage.get(*id).expect("hit resolves");
                (score.to_bits(), r.user.0, r.raw_sql.clone())
            })
        })
        .collect();
    out.sort();
    out
}

fn denote_sharded(s: &ShardedCqms, hits: &[(QueryId, f64)]) -> Denoted {
    let mut out: Denoted = hits
        .iter()
        .map(|(id, score)| {
            let (shard, local) = s.locate(*id);
            s.shards()[shard].read(|c| {
                let r = c.storage.get(local).expect("hit resolves");
                (score.to_bits(), r.user.0, r.raw_sql.clone())
            })
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline equivalence: under any generated interleaving of
    /// ingests, tombstones, ACL flips, maintenance and rebuilds, sharded
    /// keyword / kNN / substring reads match the unsharded path exactly,
    /// for every viewer.
    #[test]
    fn sharded_reads_match_unsharded(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        shards in 2usize..=4,
    ) {
        let unsharded = CqmsService::new(Cqms::new(engine(), config(1)));
        let sharded = ShardedCqms::new(engine, config(shards));
        let u_users: Vec<UserId> =
            (0..USERS).map(|i| unsharded.register_user(&format!("user-{i}"))).collect();
        let s_users: Vec<UserId> =
            (0..USERS).map(|i| sharded.register_user(&format!("user-{i}"))).collect();
        prop_assert_eq!(&u_users, &s_users, "broadcast directories agree");
        for (g, u) in [(GroupId(0), u_users[0]), (GroupId(1), u_users[1])] {
            let ug = unsharded.create_group(&format!("g{}", g.0));
            let sg = sharded.create_group(&format!("g{}", g.0));
            prop_assert_eq!(ug, sg);
            unsharded.join_group(u, ug).unwrap();
            sharded.join_group(u, sg).unwrap();
        }

        let mut u_issued = Issued::new();
        let mut s_issued = Issued::new();
        for (i, op) in ops.iter().enumerate() {
            let ts = 1_000 + i as u64 * 60;
            apply_unsharded(&unsharded, &u_users, &mut u_issued, op, ts);
            apply_sharded(&sharded, &s_users, &mut s_issued, op, ts);
        }
        prop_assert_eq!(u_issued.len(), s_issued.len());
        prop_assert_eq!(unsharded.live_count(), sharded.live_count());

        let knn_probe = "SELECT * FROM WaterTemp WHERE temp < 18";
        for &viewer in &u_users {
            // Keyword TF-IDF, k past every possible hit: the whole visible
            // ranking must agree.
            let uk: Vec<(QueryId, f64)> = unsharded
                .search_keyword(viewer, "watertemp temp salinity lakes month", 64)
                .into_iter().map(|h| (h.id, h.score)).collect();
            let sk: Vec<(QueryId, f64)> = sharded
                .search_keyword(viewer, "watertemp temp salinity lakes month", 64)
                .into_iter().map(|h| (h.id, h.score)).collect();
            prop_assert_eq!(
                denote_unsharded(&unsharded, &uk),
                denote_sharded(&sharded, &sk),
                "keyword diverged for viewer {}", viewer
            );
            // And truncated top-k: the merged score *sequence* is the
            // unsharded one (contents may differ only on ties at the cut).
            let u3: Vec<u64> = unsharded
                .search_keyword(viewer, "watertemp temp", 3)
                .iter().map(|h| h.score.to_bits()).collect();
            let s3: Vec<u64> = sharded
                .search_keyword(viewer, "watertemp temp", 3)
                .iter().map(|h| h.score.to_bits()).collect();
            prop_assert_eq!(u3, s3, "top-3 keyword scores diverged");

            // kNN over feature and combined metrics.
            for metric in [DistanceKind::Features, DistanceKind::Combined] {
                let un: Vec<(QueryId, f64)> = unsharded
                    .similar_queries(viewer, knn_probe, 64, metric)
                    .unwrap().into_iter().map(|h| (h.id, h.score)).collect();
                let sn: Vec<(QueryId, f64)> = sharded
                    .similar_queries(viewer, knn_probe, 64, metric)
                    .unwrap().into_iter().map(|h| (h.id, h.score)).collect();
                prop_assert_eq!(
                    denote_unsharded(&unsharded, &un),
                    denote_sharded(&sharded, &sn),
                    "{:?} kNN diverged for viewer {}", metric, viewer
                );
                let u3: Vec<u64> = unsharded
                    .similar_queries(viewer, knn_probe, 3, metric)
                    .unwrap().iter().map(|h| h.score.to_bits()).collect();
                let s3: Vec<u64> = sharded
                    .similar_queries(viewer, knn_probe, 3, metric)
                    .unwrap().iter().map(|h| h.score.to_bits()).collect();
                prop_assert_eq!(u3, s3, "top-3 {:?} scores diverged", metric);
            }

            // Substring (exact membership; scoreless).
            let us: Vec<(QueryId, f64)> = unsharded
                .search_substring(viewer, "WaterTemp")
                .into_iter().map(|id| (id, 0.0)).collect();
            let ss: Vec<(QueryId, f64)> = sharded
                .search_substring(viewer, "WaterTemp")
                .into_iter().map(|id| (id, 0.0)).collect();
            prop_assert_eq!(
                denote_unsharded(&unsharded, &us),
                denote_sharded(&sharded, &ss),
                "substring diverged for viewer {}", viewer
            );

            // Completion (PR 10): merged global statistics must reproduce
            // the unsharded scoring exactly — full suggestion sequences,
            // score bits included.
            for probe in [
                "SELECT * FROM WaterTemp, ",
                "SELECT * FROM WaterTemp WHERE ",
                "SELECT ",
            ] {
                let uc: Vec<(String, u64, String)> = unsharded
                    .complete(viewer, probe, 8)
                    .into_iter().map(|s| (s.text, s.score.to_bits(), s.why)).collect();
                let sc: Vec<(String, u64, String)> = sharded
                    .complete(viewer, probe, 8)
                    .into_iter().map(|s| (s.text, s.score.to_bits(), s.why)).collect();
                prop_assert_eq!(uc, sc, "completion diverged on {:?} for viewer {}", probe, viewer);
            }

            // Recommendation (PR 10): the merged panel must carry the same
            // rows as the unsharded one — same score percentages in the
            // same order, same SQL/diff/annotation multiset. k is chosen
            // so the 3k candidate pool covers every possible hit: at the
            // pool boundary, kNN-score ties may cut differently across the
            // two id spaces (exactly the documented top-k tie caveat), but
            // with no cut the panels must agree row for row. Ids differ by
            // striping, so the row multiset is compared sorted.
            let ur = unsharded.recommend(viewer, knn_probe, 16).expect("seed parses");
            let sr = sharded.recommend(viewer, knn_probe, 16).expect("seed parses");
            let upcts: Vec<u8> = ur.iter().map(|r| r.score_pct).collect();
            let spcts: Vec<u8> = sr.iter().map(|r| r.score_pct).collect();
            prop_assert_eq!(upcts, spcts, "panel score sequence diverged for viewer {}", viewer);
            let mut urows: Vec<(u8, String, String, String)> = ur
                .into_iter().map(|r| (r.score_pct, r.sql, r.diff, r.annotation)).collect();
            let mut srows: Vec<(u8, String, String, String)> = sr
                .into_iter().map(|r| (r.score_pct, r.sql, r.diff, r.annotation)).collect();
            urows.sort();
            srows.sort();
            prop_assert_eq!(urows, srows, "panel rows diverged for viewer {}", viewer);
        }
    }
}

/// Unique scratch directory per proptest case (cases share one process).
fn case_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cqms-sharded-{tag}-{}-{n}", std::process::id()))
}

/// Make `shard-{i}` unopenable without destroying its durable state:
/// the directory moves aside and a regular file squats on its name.
fn break_shard_dir(dir: &std::path::Path, shard: usize) {
    let shard_dir = dir.join(format!("shard-{shard}"));
    let bak = dir.join(format!("shard-{shard}.bak"));
    std::fs::rename(&shard_dir, &bak).expect("stash shard dir");
    std::fs::write(&shard_dir, b"disk fault").expect("plant squatter");
}

/// Undo [`break_shard_dir`]: the original directory returns intact.
fn fix_shard_dir(dir: &std::path::Path, shard: usize) {
    let shard_dir = dir.join(format!("shard-{shard}"));
    let bak = dir.join(format!("shard-{shard}.bak"));
    std::fs::remove_file(&shard_dir).expect("evict squatter");
    std::fs::rename(&bak, &shard_dir).expect("restore shard dir");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Degraded-open × repair interleavings (PR 9 acceptance): corrupt
    /// any non-empty subset of a 3-shard durable deployment's
    /// directories, open degraded, then heal the directories. A repair
    /// epoch while they are broken promotes nothing; one epoch after
    /// they are fixed promotes *exactly* the broken set, un-fences
    /// writes, and the healed deployment's keyword / kNN / substring
    /// reads converge to an unsharded oracle fed the identical trace.
    #[test]
    fn degraded_open_then_repair_converges_to_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        mask in 1usize..8,
    ) {
        const SHARDS: usize = 3;
        let dir = case_dir("repair");
        let _ = std::fs::remove_dir_all(&dir);
        let broken: Vec<usize> = (0..SHARDS).filter(|i| mask & (1 << i) != 0).collect();

        let durable_config = CqmsConfig {
            wal_fsync: false,
            open_degraded: true,
            repair_interval_ms: 0, // manual epochs: the test is the clock
            ..config(SHARDS)
        };
        // Feed the trace to a durable sharded deployment and an unsharded
        // RAM oracle in lockstep, then close the durable one cleanly.
        // Recovered shards rebuild with an *empty* directory (user/group
        // registration is deliberately not WAL-logged; callers re-register
        // after reopen, as the durability tests do). Burn `UserId(0)` — the
        // implicit admin — on a sentinel in both deployments so every trace
        // user is a plain user and the oracle's visibility semantics match
        // a directory-less recovered shard: Public readable by anyone,
        // Private owner-only, Group unreadable (nobody is a member).
        let unsharded = CqmsService::new(Cqms::new(engine(), config(1)));
        unsharded.register_user("root");
        let u_users: Vec<UserId> =
            (0..USERS).map(|i| unsharded.register_user(&format!("user-{i}"))).collect();
        let mut u_issued = Issued::new();
        let mut s_issued = Issued::new();
        {
            let sharded = ShardedCqms::open(engine, durable_config.clone(), &dir)
                .expect("healthy open");
            sharded.register_user("root");
            let s_users: Vec<UserId> =
                (0..USERS).map(|i| sharded.register_user(&format!("user-{i}"))).collect();
            prop_assert_eq!(&u_users, &s_users);
            for (i, op) in ops.iter().enumerate() {
                let ts = 1_000 + i as u64 * 60;
                apply_unsharded(&unsharded, &u_users, &mut u_issued, op, ts);
                apply_sharded(&sharded, &s_users, &mut s_issued, op, ts);
            }
            sharded.shutdown();
        }

        for &b in &broken {
            break_shard_dir(&dir, b);
        }
        let sharded = ShardedCqms::open(engine, durable_config, &dir)
            .expect("degraded open");
        prop_assert_eq!(sharded.degraded_shards(), broken.clone());
        // Directories still broken: an epoch attempts but promotes nothing.
        prop_assert_eq!(sharded.run_repair_epoch(), Vec::<usize>::new());
        prop_assert_eq!(sharded.degraded_shards(), broken.clone());

        for &b in &broken {
            fix_shard_dir(&dir, b);
        }
        // One epoch after the fix promotes exactly the broken set.
        prop_assert_eq!(sharded.run_repair_epoch(), broken.clone());
        prop_assert_eq!(sharded.degraded_shards(), Vec::<usize>::new());
        for h in sharded.health() {
            prop_assert_eq!(h.state, ShardState::Serving);
            if broken.contains(&h.shard) {
                prop_assert!(h.repair_attempts >= 1, "attempts recorded");
                prop_assert!(sharded.shard_recovery()[h.shard].is_ok());
            }
        }
        prop_assert_eq!(unsharded.live_count(), sharded.live_count());

        // Writes are un-fenced everywhere: land one per user (covers every
        // formerly broken shard), mirrored into the oracle.
        let ts0 = 1_000 + ops.len() as u64 * 60;
        for (i, &u) in u_users.iter().enumerate() {
            let ts = ts0 + i as u64 * 60;
            let sql = "SELECT * FROM WaterTemp WHERE temp < 18";
            unsharded.run_query_at(u, sql, ts).expect("oracle write");
            sharded.run_query_at(u, sql, ts).expect("healed shard accepts writes");
        }


        // Read convergence, every viewer: keyword / kNN / substring.
        for &viewer in &u_users {
            let uk: Vec<(QueryId, f64)> = unsharded
                .search_keyword(viewer, "watertemp temp salinity lakes month", 64)
                .into_iter().map(|h| (h.id, h.score)).collect();
            let sk: Vec<(QueryId, f64)> = sharded
                .search_keyword(viewer, "watertemp temp salinity lakes month", 64)
                .into_iter().map(|h| (h.id, h.score)).collect();
            prop_assert_eq!(
                denote_unsharded(&unsharded, &uk),
                denote_sharded(&sharded, &sk),
                "keyword diverged for viewer {}", viewer
            );
            let un: Vec<(QueryId, f64)> = unsharded
                .similar_queries(viewer, "SELECT * FROM Lakes", 64, DistanceKind::Features)
                .unwrap().into_iter().map(|h| (h.id, h.score)).collect();
            let sn: Vec<(QueryId, f64)> = sharded
                .similar_queries(viewer, "SELECT * FROM Lakes", 64, DistanceKind::Features)
                .unwrap().into_iter().map(|h| (h.id, h.score)).collect();
            prop_assert_eq!(
                denote_unsharded(&unsharded, &un),
                denote_sharded(&sharded, &sn),
                "kNN diverged for viewer {}", viewer
            );
            let us: Vec<(QueryId, f64)> = unsharded
                .search_substring(viewer, "WaterTemp")
                .into_iter().map(|id| (id, 0.0)).collect();
            let ss: Vec<(QueryId, f64)> = sharded
                .search_substring(viewer, "WaterTemp")
                .into_iter().map(|id| (id, 0.0)).collect();
            prop_assert_eq!(
                denote_unsharded(&unsharded, &us),
                denote_sharded(&sharded, &ss),
                "substring diverged for viewer {}", viewer
            );
        }
        sharded.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
